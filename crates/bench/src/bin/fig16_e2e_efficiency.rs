//! Figure 16: end-to-end efficiency vs the baselines. Each baseline is
//! timed for its segmentation pass and for the added explanation pass (CA
//! per segment, §7.5.2); TSExplain reports its overall time (the
//! segmentation and explanation modules interleave). All methods use the
//! optimal K TSExplain finds.

use std::time::Instant;

use tsexplain::{Optimizations, Segmentation};
use tsexplain_bench::{baseline_cuts, explain_fixed_segmentation, explain_with, fmt_ms, BASELINES};
use tsexplain_datagen::{covid, liquor, Workload};

fn run(workload: &Workload, smoothing: usize, window: usize) {
    // First find the optimal K (not timed — shared by all methods).
    let reference = explain_with(workload, Optimizations::all(), None, smoothing);
    let k = reference.chosen_k;
    let aggregate = &reference.aggregate;
    let n = aggregate.len();
    println!("\n--- {} (K = {k}) ---", workload.name);
    println!(
        "{:<18}{:>16}{:>16}{:>14}",
        "method", "segmentation", "explanation", "overall"
    );

    for name in BASELINES {
        let start = Instant::now();
        let cuts = baseline_cuts(name, aggregate, k, window);
        let seg_time = start.elapsed();
        let scheme = Segmentation::new(n, cuts).expect("valid cuts");
        let (_, expl_time) = explain_fixed_segmentation(workload, &scheme, 3);
        println!(
            "{:<18}{:>16}{:>16}{:>14}",
            name,
            fmt_ms(seg_time),
            fmt_ms(expl_time),
            fmt_ms(seg_time + expl_time)
        );
    }

    for (label, optimizations) in [
        ("VanillaTSExplain", Optimizations::none()),
        ("TSExplain", Optimizations::all()),
    ] {
        let result = explain_with(workload, optimizations, Some(k), smoothing);
        println!(
            "{:<18}{:>16}{:>16}{:>14}",
            label,
            "-",
            "-",
            fmt_ms(result.latency.total())
        );
    }
}

fn main() {
    println!("Figure 16 — end-to-end efficiency comparison with baselines");
    let covid_data = covid::generate(0);
    run(&covid_data.total_workload(), 1, 15);
    run(&covid_data.daily_workload(), 7, 15);
    run(&liquor::generate(0).workload(), 1, 10);
    println!("\n(paper: FLUSS slowest everywhere; optimized TSExplain fastest everywhere)");
}
