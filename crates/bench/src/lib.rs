//! # tsexplain-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (see DESIGN.md §6 for the index) plus Criterion micro- and
//! macro-benchmarks. Each binary prints the same rows/series the paper
//! reports; EXPERIMENTS.md records paper-vs-measured.
//!
//! Run a single experiment with e.g.
//! `cargo run --release -p tsexplain-bench --bin fig11_covid_total`,
//! and the statistical benchmarks with `cargo bench --workspace`.

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout)]
use std::time::{Duration, Instant};

use tsexplain::{ExplainRequest, ExplainResult, ExplainSession, Optimizations};
use tsexplain_baselines::{bottom_up, fluss, nnsegment};
use tsexplain_cube::{CubeConfig, ExplanationCube};
use tsexplain_datagen::Workload;
use tsexplain_diff::{CascadingAnalysts, DiffMetric};
use tsexplain_segment::Segmentation;

/// Simple `--flag value` argument lookup for the harness binaries.
pub fn arg_usize(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs the full TSExplain pipeline on a workload with the paper's default
/// configuration (all optimizations, auto K, top-3).
pub fn explain_default(workload: &Workload, smoothing: usize) -> ExplainResult {
    explain_with(workload, Optimizations::all(), None, smoothing)
}

/// Runs the pipeline with explicit optimizations / K / smoothing.
pub fn explain_with(
    workload: &Workload,
    optimizations: Optimizations,
    fixed_k: Option<usize>,
    smoothing: usize,
) -> ExplainResult {
    let mut request = ExplainRequest::new(workload.explain_by.clone())
        .with_optimizations(optimizations)
        .with_smoothing(smoothing);
    if let Some(k) = fixed_k {
        request = request.with_fixed_k(k);
    }
    explain_request(workload, &request)
}

/// Answers one request against a one-shot session over the workload — the
/// harness's end-to-end entry point (precompute + pipeline per call).
pub fn explain_request(workload: &Workload, request: &ExplainRequest) -> ExplainResult {
    ExplainSession::new(workload.relation.clone(), workload.query.clone())
        .expect("workload registers")
        .explain(request)
        .expect("workload must be explainable")
}

/// One baseline's cuts on the aggregated series.
pub fn baseline_cuts(name: &str, series: &[f64], k: usize, window: usize) -> Vec<usize> {
    match name {
        "Bottom-Up" => bottom_up(series, k),
        "FLUSS" => fluss(series, k, window),
        "NNSegment" => nnsegment(series, k, window),
        other => panic!("unknown baseline {other}"),
    }
}

/// The three baseline names, in the paper's order.
pub const BASELINES: [&str; 3] = ["Bottom-Up", "FLUSS", "NNSegment"];

/// A segment row for table output: time range + rendered top-m.
pub struct SegmentRow {
    /// `"start ~ end"`.
    pub range: String,
    /// `"label (+)"` strings, best first.
    pub tops: Vec<String>,
}

/// Renders an [`ExplainResult`]'s segments as rows.
pub fn segment_rows(result: &ExplainResult) -> Vec<SegmentRow> {
    result
        .segments
        .iter()
        .map(|seg| SegmentRow {
            range: format!("{} ~ {}", seg.start_time, seg.end_time),
            tops: seg
                .explanations
                .iter()
                .map(|e| format!("{} ({})", e.label, e.effect))
                .collect(),
        })
        .collect()
}

/// Prints a Table-3/4/5-style table.
// Stdout IS this helper's output channel (the experiment binaries pipe it
// into EXPERIMENTS.md), hence the exemption from the library-wide deny.
#[allow(clippy::print_stdout)]
pub fn print_segment_table(title: &str, rows: &[SegmentRow], m: usize) {
    println!("\n{title}");
    print!("{:<26}", "Segment");
    for r in 1..=m {
        print!("{:<30}", format!("Top-{r} Expl"));
    }
    println!();
    for row in rows {
        print!("{:<26}", row.range);
        for r in 0..m {
            print!("{:<30}", row.tops.get(r).map(String::as_str).unwrap_or("-"));
        }
        println!();
    }
}

/// Attaches the explanation module to an external segmentation: for each
/// segment, derive the top-m explanations with exact Cascading Analysts
/// (the §7.5.2 protocol for making the shape baselines comparable).
/// Returns the per-segment rows and the explanation wall-clock.
pub fn explain_fixed_segmentation(
    workload: &Workload,
    scheme: &Segmentation,
    m: usize,
) -> (Vec<SegmentRow>, Duration) {
    let cube = ExplanationCube::build(
        &workload.relation,
        &workload.query,
        &CubeConfig::new(workload.explain_by.iter().map(String::as_str)).with_filter_ratio(0.001),
    )
    .expect("cube must build");
    let start = Instant::now();
    let mut ca = CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, m);
    let rows = scheme
        .segments()
        .into_iter()
        .map(|seg| {
            let top = ca.top_m(seg);
            SegmentRow {
                range: format!(
                    "{} ~ {}",
                    cube.timestamps()[seg.0],
                    cube.timestamps()[seg.1]
                ),
                tops: top
                    .items()
                    .iter()
                    .map(|it| format!("{} ({})", cube.label(it.id), it.effect))
                    .collect(),
            }
        })
        .collect();
    (rows, start.elapsed())
}

/// Formats a duration in ms with 1 decimal.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.1}ms", d.as_secs_f64() * 1e3)
}
