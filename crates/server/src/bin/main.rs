//! The `tsx-server` binary: serve the TSExplain HTTP/JSON API.
//!
//! ```text
//! tsx-server [--addr HOST:PORT] [--workers N] [--budget-mb MB] [--max-body-mb MB]
//!            [--max-conns N] [--queue-depth N] [--tenant-rps R]
//!            [--request-timeout-ms MS] [--threads N] [--data-dir PATH]
//!            [--log-level LEVEL] [--slow-ms MS]
//! ```
//!
//! `--threads` sets the default intra-query parallelism for requests that
//! carry no `threads` member of their own (0 = machine default; results
//! are byte-identical at any setting).
//!
//! `--max-conns`, `--queue-depth` and `--tenant-rps` tune admission
//! control: the open-connection limit enforced at accept, the bound of
//! the pending-request queue between the reactor and the workers (both
//! shed with `429 Too Many Requests` + `retry-after` when exceeded), and
//! the per-tenant token-bucket rate in requests/second (0 = unlimited).
//!
//! `--request-timeout-ms` caps every explain/compare deadline (0 =
//! unbounded, the default). A request's own `timeout_ms` member can
//! tighten the cap but never loosen it; a request over budget is
//! abandoned cooperatively and answered `504 deadline_exceeded` with all
//! partial work discarded.
//!
//! `--data-dir` turns on the durable storage engine: datasets are
//! recovered from `PATH` before the listener accepts, every mutation is
//! WAL-logged (and fsynced) before its acknowledgement, and
//! budget-evicted cubes are demoted to disk instead of dropped. Without
//! it the server is purely in-memory.
//!
//! `--log-level` (`off|error|warn|info|debug`, default `info`, also the
//! `TSX_LOG` environment variable) controls the structured JSON-lines
//! log on stderr. `--slow-ms` sets the flight-recorder threshold:
//! requests at or above it are captured with their span tree and served
//! at `GET /debug/requests` (0 records everything).
//!
//! Serves until killed. `--addr 127.0.0.1:0` picks an ephemeral port and
//! prints it, which is what scripts and CI use.

use std::process::ExitCode;

use tsexplain_server::{Server, ServerConfig};

fn main() -> ExitCode {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".into(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => match args.next() {
                Some(addr) => config.addr = addr,
                None => return usage("--addr needs HOST:PORT"),
            },
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.workers = n,
                None => return usage("--workers needs a positive integer"),
            },
            "--budget-mb" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(mb) => config.memory_budget = mb * 1024 * 1024,
                None => return usage("--budget-mb needs a size in MiB"),
            },
            "--max-body-mb" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(mb) => config.max_body_bytes = mb * 1024 * 1024,
                None => return usage("--max-body-mb needs a size in MiB"),
            },
            "--max-conns" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => config.max_conns = n,
                _ => return usage("--max-conns needs a positive integer"),
            },
            "--queue-depth" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => config.queue_depth = n,
                _ => return usage("--queue-depth needs a positive integer"),
            },
            "--tenant-rps" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(r) if r >= 0.0 && r.is_finite() => config.tenant_rps = r,
                _ => return usage("--tenant-rps needs a non-negative rate (0 = unlimited)"),
            },
            "--request-timeout-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(0) => config.request_timeout = None,
                Some(ms) => config.request_timeout = Some(std::time::Duration::from_millis(ms)),
                None => return usage("--request-timeout-ms needs milliseconds (0 = unbounded)"),
            },
            "--threads" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => config.threads = Some(n),
                None => return usage("--threads needs a thread count (0 = machine default)"),
            },
            "--data-dir" => match args.next() {
                Some(dir) => config.data_dir = Some(dir.into()),
                None => return usage("--data-dir needs a directory path"),
            },
            "--log-level" => match args.next().as_deref().map(tsexplain_obs::log::parse_level) {
                Some(Ok(level)) => tsexplain_obs::log::set_level(level),
                Some(Err(e)) => return usage(&e),
                None => return usage("--log-level needs off|error|warn|info|debug"),
            },
            "--slow-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) => config.slow_ms = ms,
                None => return usage("--slow-ms needs a threshold in milliseconds"),
            },
            "--help" | "-h" => {
                println!(
                    "tsx-server: the TSExplain HTTP/JSON serving subsystem\n\n\
                     USAGE: tsx-server [--addr HOST:PORT] [--workers N] \
                     [--budget-mb MB] [--max-body-mb MB] [--max-conns N] \
                     [--queue-depth N] [--tenant-rps R] [--request-timeout-ms MS] \
                     [--threads N] [--data-dir PATH] [--log-level LEVEL] [--slow-ms MS]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown flag {other:?}")),
        }
    }

    let workers = config.workers;
    let budget = config.memory_budget;
    match Server::bind(config) {
        Ok(handle) => {
            println!(
                "tsx-server listening on http://{} ({} workers, {} MiB cube budget)",
                handle.local_addr(),
                workers,
                budget / (1024 * 1024),
            );
            handle.join();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tsx-server: bind failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("tsx-server: {message} (see --help)");
    ExitCode::FAILURE
}
