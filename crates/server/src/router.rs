//! Route dispatch: paths + methods to registry operations.
//!
//! | Method | Path                     | Body               | Response            |
//! |--------|--------------------------|--------------------|---------------------|
//! | POST   | `/datasets`              | `RegisterDataset`  | `DatasetCreated`    |
//! | POST   | `/datasets/{id}/rows`    | `AppendRowsBody`   | `AppendAck`         |
//! | POST   | `/datasets/{id}/explain` | `ExplainRequest`   | `ExplainResult`     |
//! | POST   | `/datasets/{id}/compare` | `CompareBody`      | `CompareResponse`   |
//! | GET    | `/datasets/{id}/stats`   | —                  | stats JSON          |
//! | DELETE | `/datasets/{id}`         | —                  | `{"removed": true}` |
//! | GET    | `/metrics`               | —                  | metrics JSON        |
//! | GET    | `/metrics?format=prometheus` | —              | exposition text     |
//! | GET    | `/debug/requests`        | —                  | flight recorder JSON |
//! | GET    | `/healthz`               | —                  | `{"status": "ok"}`  |
//!
//! `/compare` fans one base request out across every segmentation strategy
//! (the paper's §7.2 harness): the DP plus the three shape baselines run
//! against the tenant's shared cube, and the response carries side-by-side
//! results with `tsexplain-eval` distance/rank metrics.
//!
//! Every error — parse failure, unknown id, invalid request, worker panic —
//! maps through [`ApiError`] to a 4xx/5xx JSON body.

use std::sync::atomic::Ordering;

use serde::{Deserialize, Serialize, Value};
use tsexplain::{
    default_window_for, DatasetId, Deadline, ExplainRequest, RegistryError, Relation,
    SegmenterSpec, TsExplainError,
};
use tsexplain_eval::{distance_percent, rank_ascending};

use crate::error::ApiError;
use crate::http::{Request, Response};
use crate::server::ServerShared;
use crate::wire::{
    decode_rows, stats_body, AppendAck, AppendRowsBody, CompareBody, CompareResponse,
    DatasetCreated, RegisterDataset, StrategyComparison,
};

/// Dispatches one request against the shared server state.
pub fn handle(shared: &ServerShared, request: &Request) -> Response {
    match route(shared, request) {
        Ok(response) => response,
        Err(e) => e.into_response(),
    }
}

fn route(shared: &ServerShared, request: &Request) -> Result<Response, ApiError> {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    let method = request.method.as_str();
    match (method, segments.as_slice()) {
        ("POST", ["datasets"]) => register(shared, &request.body),
        ("POST", ["datasets", id, "rows"]) => append(shared, parse_id(id)?, &request.body),
        ("POST", ["datasets", id, "explain"]) => explain(shared, parse_id(id)?, &request.body),
        ("POST", ["datasets", id, "compare"]) => compare(shared, parse_id(id)?, &request.body),
        ("GET", ["datasets", id, "stats"]) => stats(shared, parse_id(id)?),
        ("DELETE", ["datasets", id]) => remove(shared, parse_id(id)?),
        ("GET", ["metrics"]) => metrics(shared, request),
        ("GET", ["debug", "requests"]) => Ok(json_ok(200, &shared.obs.flight.snapshot_value())),
        ("GET", ["healthz"]) => Ok(json_ok(
            200,
            &Value::object([("status", Value::String("ok".into()))]),
        )),
        // Known paths with the wrong verb get a 405, everything else 404.
        (_, ["datasets"]) | (_, ["metrics"]) | (_, ["healthz"]) | (_, ["debug", "requests"]) => {
            Err(ApiError::method_not_allowed(method, &request.path))
        }
        (_, ["datasets", ..]) if segments.len() <= 3 => {
            Err(ApiError::method_not_allowed(method, &request.path))
        }
        _ => Err(ApiError::not_found(&request.path)),
    }
}

/// `/metrics` in its two formats: the byte-stable JSON document
/// (default, also `?format=json`) and the Prometheus text exposition.
fn metrics(shared: &ServerShared, request: &Request) -> Result<Response, ApiError> {
    match request.query_param("format") {
        None | Some("json") => Ok(json_ok(200, &shared.metrics_value())),
        Some("prometheus") => Ok(Response::text(200, shared.metrics_prometheus())),
        Some(other) => Err(ApiError::bad_request(format!(
            "unknown metrics format {other:?} (expected json or prometheus)"
        ))),
    }
}

fn parse_id(raw: &str) -> Result<DatasetId, ApiError> {
    raw.parse::<u64>()
        .map(DatasetId::from_u64)
        .map_err(|_| ApiError::bad_request(format!("dataset id {raw:?} is not an integer")))
}

fn parse_body<T: Deserialize>(body: &[u8]) -> Result<T, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::bad_request("request body is not UTF-8"))?;
    serde_json::from_str(text).map_err(|e| ApiError::bad_request(e.to_string()))
}

fn json_ok<T: Serialize + ?Sized>(status: u16, payload: &T) -> Response {
    // Response bodies always encode today, but a panic here would drop
    // the connection with nothing on the wire — degrade to a 500 instead.
    match serde_json::to_string(payload) {
        Ok(body) => Response::json(status, body),
        Err(e) => ApiError::internal(format!("response encoding failed: {e}")).into_response(),
    }
}

fn register(shared: &ServerShared, body: &[u8]) -> Result<Response, ApiError> {
    let spec: RegisterDataset = parse_body(body)?;
    let rows = decode_rows(&spec.schema, &spec.rows)?;
    let n_rows = rows.len();
    let mut builder = Relation::builder(spec.schema);
    for row in rows {
        builder
            .push_row(row)
            .map_err(|e| ApiError::bad_request(e.to_string()))?;
    }
    let id = shared
        .registry
        .register(builder.finish(), spec.query)
        .map_err(ApiError::from)?;
    let n_points = shared
        .registry
        .dataset_stats(id)
        .map(|s| s.n_points)
        .unwrap_or(0);
    Ok(json_ok(
        201,
        &DatasetCreated {
            dataset_id: id.as_u64(),
            n_rows,
            n_points,
        },
    ))
}

fn append(shared: &ServerShared, id: DatasetId, body: &[u8]) -> Result<Response, ApiError> {
    let spec: AppendRowsBody = parse_body(body)?;
    // Row decoding needs the tenant's schema.
    let schema = {
        let handle = shared.registry.session(id).map_err(ApiError::from)?;
        let session = handle
            .lock()
            .map_err(|_| ApiError::internal(format!("dataset {id} is poisoned")))?;
        session.schema().clone()
    };
    let rows = decode_rows(&schema, &spec.rows)?;
    let appended = rows.len();
    shared
        .registry
        .append_rows(id, rows)
        .map_err(ApiError::from)?;
    let n_points = shared
        .registry
        .dataset_stats(id)
        .map(|s| s.n_points)
        .unwrap_or(0);
    Ok(json_ok(200, &AppendAck { appended, n_points }))
}

/// Applies the server-wide `--threads` default to requests that carry no
/// explicit thread count of their own.
fn with_thread_default(shared: &ServerShared, request: ExplainRequest) -> ExplainRequest {
    match (request.threads(), shared.threads) {
        (None, Some(t)) => request.with_threads(t),
        _ => request,
    }
}

/// Mints the request's deadline — the tighter of the server cap
/// (`--request-timeout-ms`) and the request's own wire `timeout_ms` (a
/// client can tighten the cap, never loosen it) — and attaches its cancel
/// token so the engine's hot loops observe it. With neither configured
/// the request runs unbounded, byte-identical to a server without
/// deadlines.
fn with_deadline(
    shared: &ServerShared,
    request: ExplainRequest,
) -> (ExplainRequest, Option<Deadline>) {
    match Deadline::mint(shared.request_timeout, request.timeout_ms()) {
        Some(deadline) => {
            let request = request.with_cancel(deadline.token().clone());
            (request, Some(deadline))
        }
        None => (request, None),
    }
}

/// Turns a cooperative-cancellation error into the deadline 504: bumps
/// the counters (every deadline 504; plus `cancelled_inflight` when the
/// trip happened after engine compute began), leaves the stage in the
/// flight recorder, and reports honest elapsed/budget milliseconds from
/// the deadline that was actually minted for this request.
fn deadline_response(
    shared: &ServerShared,
    deadline: Option<&Deadline>,
    stage: &'static str,
) -> ApiError {
    let m = &shared.metrics;
    m.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    if stage != "start" {
        m.cancelled_inflight.fetch_add(1, Ordering::Relaxed);
    }
    tsexplain_obs::trace::annotate("cancelled_at_stage", Value::String(stage.into()));
    let (elapsed_ms, budget_ms) = match deadline {
        Some(d) => (d.elapsed_ms(), d.budget_ms()),
        // Unreachable in practice — a token only exists because a deadline
        // was minted — but a zeroed accounting beats a panic.
        None => (0, 0),
    };
    ApiError::deadline_exceeded(stage, elapsed_ms, budget_ms)
}

/// Maps a registry failure, routing cancellation to the 504 path.
fn map_registry_error(
    shared: &ServerShared,
    deadline: Option<&Deadline>,
    e: RegistryError,
) -> ApiError {
    match e {
        RegistryError::Session(TsExplainError::Cancelled { stage }) => {
            deadline_response(shared, deadline, stage)
        }
        other => ApiError::from(other),
    }
}

/// Maps an engine failure, routing cancellation to the 504 path.
fn map_engine_error(
    shared: &ServerShared,
    deadline: Option<&Deadline>,
    e: TsExplainError,
) -> ApiError {
    match e {
        TsExplainError::Cancelled { stage } => deadline_response(shared, deadline, stage),
        other => ApiError::from(other),
    }
}

fn explain(shared: &ServerShared, id: DatasetId, body: &[u8]) -> Result<Response, ApiError> {
    let request = with_thread_default(shared, parse_body::<ExplainRequest>(body)?);
    let (request, deadline) = with_deadline(shared, request);
    let result = shared
        .registry
        .explain(id, &request)
        .map_err(|e| map_registry_error(shared, deadline.as_ref(), e))?;
    shared.metrics.observe_latency(&result.latency);
    shared
        .obs
        .strategy_hist
        .record(&result.strategy, result.latency.total());
    tsexplain_obs::trace::annotate("latency", result.latency.serialize());
    Ok(json_ok(200, &result))
}

/// Fans one request across every segmentation strategy against one
/// tenant: the tenant is locked **once** to prepare its shared cube (cache
/// keys are strategy-independent, so precompute is paid at most once and
/// the session is never re-locked per strategy), then the four strategies
/// run concurrently across the request's parallel context. Chunk-ordered
/// reduction keeps the response byte-identical at any thread count.
fn compare(shared: &ServerShared, id: DatasetId, body: &[u8]) -> Result<Response, ApiError> {
    let spec: CompareBody = parse_body(body)?;
    let base = with_thread_default(shared, spec.request.clone());
    // One deadline covers the whole comparison — cube acquisition plus
    // every strategy row. The token rides `base` into each per-strategy
    // clone below.
    let (base, deadline) = with_deadline(shared, base);
    // One lock hold: validate + acquire (or build) the tenant's cube. The
    // prepared cube reports the series length the request actually
    // explains (after any time-range slicing), which is the length the
    // auto-sized baseline window must fit.
    let prepared = shared
        .registry
        .prepare(id, &base.clone().with_segmenter(SegmenterSpec::Dp))
        .map_err(|e| map_registry_error(shared, deadline.as_ref(), e))?;
    let window = spec
        .window
        .unwrap_or_else(|| default_window_for(prepared.n_points()));
    let specs = SegmenterSpec::all_with_window(window);
    // Window structural validity (≥ 2) is schema-free per-strategy state
    // the prepared path no longer re-validates per request; check it once
    // here so an explicit `"window": 1` is a 400, not a degenerate run.
    for s in &specs {
        s.validate()
            .map_err(|e| ApiError::from(TsExplainError::InvalidRequest(e)))?;
    }

    // Lock released: run the fan-out across the parallel context, every
    // strategy reading the same immutable cube snapshot. The request's
    // thread budget is *split*, not multiplied: `outer` workers run the
    // strategies and each strategy's pipeline gets the remaining share,
    // so a `--threads 8` compare spawns ~8 threads total, not 32.
    // Determinism makes the split a pure scheduling choice — the response
    // is byte-identical however the budget is divided.
    let total_threads = base.parallel_ctx().threads();
    let outer = total_threads.min(specs.len()).max(1);
    let inner = (total_threads / outer).max(1);
    let strategy_base = base.clone().with_threads(inner);
    let outcomes = {
        let _span = tsexplain_obs::trace::span("parallel_fanout");
        tsexplain::ParallelCtx::new(outer).map(specs.len(), |i| {
            prepared.explain(&strategy_base.clone().with_segmenter(specs[i]))
        })
    };
    shared.metrics.observe_fanout(outer);
    let mut results = Vec::with_capacity(specs.len());
    for outcome in outcomes {
        let result = outcome.map_err(|e| map_engine_error(shared, deadline.as_ref(), e))?;
        shared.metrics.observe_latency(&result.latency);
        shared
            .obs
            .strategy_hist
            .record(&result.strategy, result.latency.total());
        results.push(result);
    }
    // The reference (DP) row's breakdown is the one worth flight-recording.
    tsexplain_obs::trace::annotate("latency", results[0].latency.serialize());

    let reference_cuts = results[0].segmentation.cuts().to_vec();
    let objectives: Vec<f64> = results.iter().map(|r| r.total_variance).collect();
    let ranks = rank_ascending(&objectives);
    let strategies = results
        .into_iter()
        .zip(ranks)
        .map(|(result, objective_rank)| StrategyComparison {
            strategy: result.strategy.clone(),
            distance_percent_vs_dp: distance_percent(&result.segmentation, &reference_cuts),
            objective_rank,
            result,
        })
        .collect();
    Ok(json_ok(
        200,
        &CompareResponse {
            reference: "dp".into(),
            window,
            strategies,
        },
    ))
}

fn stats(shared: &ServerShared, id: DatasetId) -> Result<Response, ApiError> {
    let snapshot = shared.registry.dataset_stats(id).map_err(ApiError::from)?;
    Ok(json_ok(200, &stats_body(&snapshot)))
}

fn remove(shared: &ServerShared, id: DatasetId) -> Result<Response, ApiError> {
    if shared.registry.remove(id).map_err(ApiError::from)? {
        Ok(json_ok(
            200,
            &Value::object([("removed", Value::Bool(true))]),
        ))
    } else {
        Err(tsexplain::RegistryError::UnknownDataset(id).into())
    }
}
