//! The JSON wire protocol: request/response bodies of every endpoint.
//!
//! Explain requests and results reuse the engine's own serde layer
//! ([`tsexplain::ExplainRequest`] / [`tsexplain::ExplainResult`]), so a
//! response read off the wire deserializes into exactly the struct an
//! in-process session returns. This module adds the envelope types around
//! them: dataset registration, row appends, stats and metrics.
//!
//! Rows travel as heterogeneous JSON arrays in schema order
//! (`["2020-03-01", "NY", 17.0]`) and are decoded *schema-aware*: strings
//! and integers in dimension slots become attribute values, numbers in
//! measure slots become `f64`s. A fractional number in a dimension slot —
//! or any value in the wrong slot — is rejected row-by-row with the
//! offending row index in the message.

use serde::{Deserialize, Error, Serialize, Value};
use tsexplain::{
    AggQuery, DatasetSnapshot, Datum, ExplainRequest, ExplainResult, Schema, SessionStats,
};
use tsexplain_relation::{decode_wire_row, encode_wire_row};

use crate::error::ApiError;

/// `POST /datasets` request body.
#[derive(Debug)]
pub struct RegisterDataset {
    /// The relation's schema.
    pub schema: Schema,
    /// The "what happened" aggregation query.
    pub query: AggQuery,
    /// Initial rows in schema order (may be empty for streaming cold
    /// starts).
    pub rows: Vec<Value>,
}

impl Deserialize for RegisterDataset {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(RegisterDataset {
            schema: value.field("schema")?,
            query: value.field("query")?,
            rows: match value.get("rows") {
                None => Vec::new(),
                Some(rows) => Vec::deserialize(rows).map_err(|e| e.contextualize("rows"))?,
            },
        })
    }
}

impl Serialize for RegisterDataset {
    fn serialize(&self) -> Value {
        Value::object([
            ("schema", self.schema.serialize()),
            ("query", self.query.serialize()),
            ("rows", self.rows.serialize()),
        ])
    }
}

/// `POST /datasets` response body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatasetCreated {
    /// The tenant id all further calls address.
    pub dataset_id: u64,
    /// Rows ingested at registration.
    pub n_rows: usize,
    /// Distinct timestamps at registration.
    pub n_points: usize,
}

impl Serialize for DatasetCreated {
    fn serialize(&self) -> Value {
        Value::object([
            ("dataset_id", self.dataset_id.serialize()),
            ("n_rows", self.n_rows.serialize()),
            ("n_points", self.n_points.serialize()),
        ])
    }
}

impl Deserialize for DatasetCreated {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(DatasetCreated {
            dataset_id: value.field("dataset_id")?,
            n_rows: value.field("n_rows")?,
            n_points: value.field("n_points")?,
        })
    }
}

/// `POST /datasets/{id}/rows` request body.
#[derive(Debug)]
pub struct AppendRowsBody {
    /// Rows in schema order.
    pub rows: Vec<Value>,
}

impl Deserialize for AppendRowsBody {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(AppendRowsBody {
            rows: value.field("rows")?,
        })
    }
}

impl Serialize for AppendRowsBody {
    fn serialize(&self) -> Value {
        Value::object([("rows", self.rows.serialize())])
    }
}

/// `POST /datasets/{id}/rows` response body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppendAck {
    /// Rows ingested by this call.
    pub appended: usize,
    /// Distinct timestamps after the append.
    pub n_points: usize,
}

impl Serialize for AppendAck {
    fn serialize(&self) -> Value {
        Value::object([
            ("appended", self.appended.serialize()),
            ("n_points", self.n_points.serialize()),
        ])
    }
}

impl Deserialize for AppendAck {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(AppendAck {
            appended: value.field("appended")?,
            n_points: value.field("n_points")?,
        })
    }
}

/// `POST /datasets/{id}/compare` request body: the base request to fan
/// out across every segmentation strategy, plus an optional shared window
/// for the window-parameterized strategies. When absent, the window is
/// auto-sized from the length the request actually explains — the
/// time-sliced horizon, not the full dataset — which keeps windowed
/// compares feasible whenever that horizon has at least 6 points (below
/// that, FLUSS/NNSegment cannot run and the compare is a 400). Any
/// `segmenter` member inside the base request is ignored — the fan-out
/// overrides it per strategy.
#[derive(Debug)]
pub struct CompareBody {
    /// The base explain request (strategy member ignored).
    pub request: ExplainRequest,
    /// Shared FLUSS/NNSegment window override.
    pub window: Option<usize>,
}

impl Deserialize for CompareBody {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(CompareBody {
            request: value.field("request")?,
            window: match value.get("window") {
                None | Some(Value::Null) => None,
                Some(w) => Some(usize::deserialize(w).map_err(|e| e.contextualize("window"))?),
            },
        })
    }
}

impl Serialize for CompareBody {
    fn serialize(&self) -> Value {
        Value::object([
            ("request", self.request.serialize()),
            ("window", self.window.serialize()),
        ])
    }
}

/// One strategy's row in a `/compare` response: the full result plus the
/// cross-strategy evaluation metrics.
#[derive(Debug)]
pub struct StrategyComparison {
    /// The strategy's wire name.
    pub strategy: String,
    /// The paper's `distance percent (%)` between this strategy's cuts and
    /// the DP reference's (0 for the DP itself; §7.3's metric).
    pub distance_percent_vs_dp: f64,
    /// 1-based ascending rank of this strategy's explanation-aware
    /// objective among all compared strategies (min-rank ties; rank 1 =
    /// lowest `total_variance`).
    pub objective_rank: f64,
    /// The strategy's full explain result.
    pub result: ExplainResult,
}

impl Serialize for StrategyComparison {
    fn serialize(&self) -> Value {
        Value::object([
            ("strategy", self.strategy.serialize()),
            (
                "distance_percent_vs_dp",
                self.distance_percent_vs_dp.serialize(),
            ),
            ("objective_rank", self.objective_rank.serialize()),
            ("result", self.result.serialize()),
        ])
    }
}

impl Deserialize for StrategyComparison {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(StrategyComparison {
            strategy: value.field("strategy")?,
            distance_percent_vs_dp: value.field("distance_percent_vs_dp")?,
            objective_rank: value.field("objective_rank")?,
            result: value.field("result")?,
        })
    }
}

/// `POST /datasets/{id}/compare` response body.
#[derive(Debug)]
pub struct CompareResponse {
    /// The strategy the distance metric is measured against (`"dp"`).
    pub reference: String,
    /// The window the window-parameterized strategies ran with.
    pub window: usize,
    /// Per-strategy results, in [`tsexplain::STRATEGIES`] order.
    pub strategies: Vec<StrategyComparison>,
}

impl Serialize for CompareResponse {
    fn serialize(&self) -> Value {
        Value::object([
            ("reference", self.reference.serialize()),
            ("window", self.window.serialize()),
            ("strategies", self.strategies.serialize()),
        ])
    }
}

impl Deserialize for CompareResponse {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(CompareResponse {
            reference: value.field("reference")?,
            window: value.field("window")?,
            strategies: value.field("strategies")?,
        })
    }
}

/// Serializes one tenant's stats snapshot (`GET /datasets/{id}/stats`).
pub fn stats_body(snapshot: &DatasetSnapshot) -> Value {
    Value::object([
        ("n_points", snapshot.n_points.serialize()),
        ("cached_cubes", snapshot.cached_cubes.serialize()),
        ("cache_bytes", snapshot.cache_bytes.serialize()),
        ("session", session_stats_value(&snapshot.stats)),
    ])
}

/// Serializes session counters (shared by stats and metrics bodies).
pub fn session_stats_value(stats: &SessionStats) -> Value {
    Value::object([
        ("requests", stats.requests.serialize()),
        ("cubes_built", stats.cubes_built.serialize()),
        ("cube_cache_hits", stats.cube_cache_hits.serialize()),
        ("cube_refreshes", stats.cube_refreshes.serialize()),
        ("rows_appended", stats.rows_appended.serialize()),
        ("rebuilds", stats.rebuilds.serialize()),
        ("cube_evictions", stats.cube_evictions.serialize()),
        ("cube_demotions", stats.cube_demotions.serialize()),
        ("cube_rehydrations", stats.cube_rehydrations.serialize()),
    ])
}

/// Decodes wire rows into raw [`Datum`] rows, schema-aware (module docs).
/// Delegates to the relation crate's codec — the same one the durable WAL
/// uses — and adds the offending row index to the error message.
pub fn decode_rows(schema: &Schema, rows: &[Value]) -> Result<Vec<Vec<Datum>>, ApiError> {
    rows.iter()
        .enumerate()
        .map(|(i, row)| {
            decode_wire_row(schema, row).map_err(|e| ApiError::bad_request(format!("row {i}: {e}")))
        })
        .collect()
}

/// Encodes raw [`Datum`] rows as wire rows (the client half).
pub fn encode_rows(rows: &[Vec<Datum>]) -> Vec<Value> {
    rows.iter().map(|row| encode_wire_row(row)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsexplain::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::dimension("t"),
            Field::dimension("state"),
            Field::measure("v"),
        ])
        .unwrap()
    }

    #[test]
    fn rows_decode_schema_aware_and_roundtrip() {
        let rows = vec![
            vec![
                Datum::Attr(3.into()),
                Datum::Attr("NY".into()),
                Datum::Num(1.5),
            ],
            vec![
                Datum::Attr("d1".into()),
                Datum::Attr(12.into()),
                Datum::Num(-2.0),
            ],
        ];
        let wire = encode_rows(&rows);
        let back = decode_rows(&schema(), &wire).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn bad_rows_name_the_offender() {
        let s = schema();
        // Wrong arity.
        let e = decode_rows(&s, &[Value::Array(vec![Value::Number(1.0)])]).unwrap_err();
        assert!(e.message.contains("row 0"), "{}", e.message);
        // Fractional number in a dimension slot.
        let e = decode_rows(
            &s,
            &[
                Value::Array(vec![
                    Value::Number(1.0),
                    Value::String("NY".into()),
                    Value::Number(1.0),
                ]),
                Value::Array(vec![
                    Value::Number(1.5),
                    Value::String("NY".into()),
                    Value::Number(1.0),
                ]),
            ],
        )
        .unwrap_err();
        assert!(e.message.contains("row 1"), "{}", e.message);
        assert!(e.message.contains("\"t\""), "{}", e.message);
        // Non-numeric measure.
        let e = decode_rows(
            &s,
            &[Value::Array(vec![
                Value::Number(1.0),
                Value::String("NY".into()),
                Value::String("x".into()),
            ])],
        )
        .unwrap_err();
        assert!(e.message.contains("\"v\""), "{}", e.message);
    }

    #[test]
    fn register_bodies_roundtrip_and_rows_default_empty() {
        let body = RegisterDataset {
            schema: schema(),
            query: AggQuery::sum("t", "v"),
            rows: encode_rows(&[vec![
                Datum::Attr(0.into()),
                Datum::Attr("NY".into()),
                Datum::Num(1.0),
            ]]),
        };
        let text = serde_json::to_string(&body).unwrap();
        let back: RegisterDataset = serde_json::from_str(&text).unwrap();
        assert_eq!(back.rows, body.rows);
        assert_eq!(back.query.time_attr(), "t");
        // `rows` may be omitted entirely (streaming cold start).
        let minimal = Value::object([
            ("schema", body.schema.serialize()),
            ("query", body.query.serialize()),
        ]);
        let back = RegisterDataset::deserialize(&minimal).unwrap();
        assert!(back.rows.is_empty());
    }

    #[test]
    fn acks_roundtrip() {
        for ack in [
            AppendAck {
                appended: 0,
                n_points: 0,
            },
            AppendAck {
                appended: 42,
                n_points: 9,
            },
        ] {
            let back: AppendAck =
                serde_json::from_str(&serde_json::to_string(&ack).unwrap()).unwrap();
            assert_eq!(back, ack);
        }
        let created = DatasetCreated {
            dataset_id: 7,
            n_rows: 100,
            n_points: 50,
        };
        let back: DatasetCreated =
            serde_json::from_str(&serde_json::to_string(&created).unwrap()).unwrap();
        assert_eq!(back, created);
    }
}
