//! Structured error mapping: engine and registry failures become 4xx/5xx
//! JSON bodies with a stable machine-readable `kind`.

use serde::{Deserialize, Error, Serialize, Value};
use tsexplain::{CubeError, RegistryError, TsExplainError};

use crate::http::Response;

/// A failed API call: the HTTP status plus a JSON body
/// `{"status", "kind", "message"}` — and, for deadline 504s, an honest
/// accounting of the budget (`"elapsed_ms"`, `"budget_ms"`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApiError {
    /// The HTTP status code.
    pub status: u16,
    /// A stable, machine-readable error class.
    pub kind: String,
    /// A human-readable description.
    pub message: String,
    /// For `deadline_exceeded` responses: how the budget was spent. Absent
    /// (and absent from the wire body) for every other error — the body
    /// stays additive, never restructured.
    pub deadline: Option<DeadlineInfo>,
}

/// The budget accounting attached to a `deadline_exceeded` 504.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeadlineInfo {
    /// Wall-clock milliseconds spent before the request was abandoned.
    pub elapsed_ms: u64,
    /// The effective budget in milliseconds — the tighter of the server
    /// cap and the request's own `timeout_ms`.
    pub budget_ms: u64,
}

impl ApiError {
    /// Builds an error from parts.
    pub fn new(status: u16, kind: impl Into<String>, message: impl Into<String>) -> Self {
        ApiError {
            status,
            kind: kind.into(),
            message: message.into(),
            deadline: None,
        }
    }

    /// 504 for a request whose deadline tripped before the engine
    /// finished. All partial work was discarded (all-or-nothing), so a
    /// retry with a larger budget sees exactly the same request semantics.
    pub fn deadline_exceeded(stage: &str, elapsed_ms: u64, budget_ms: u64) -> Self {
        let mut e = ApiError::new(
            504,
            "deadline_exceeded",
            format!(
                "request exceeded its {budget_ms} ms budget during {stage}; \
                 partial work was discarded"
            ),
        );
        e.deadline = Some(DeadlineInfo {
            elapsed_ms,
            budget_ms,
        });
        e
    }

    /// 400 for unparsable or structurally invalid payloads.
    pub fn bad_request(message: impl Into<String>) -> Self {
        ApiError::new(400, "bad_request", message)
    }

    /// 404 for paths that route nowhere.
    pub fn not_found(path: &str) -> Self {
        ApiError::new(404, "not_found", format!("no route for {path}"))
    }

    /// 405 for a known path with the wrong method.
    pub fn method_not_allowed(method: &str, path: &str) -> Self {
        ApiError::new(
            405,
            "method_not_allowed",
            format!("{method} is not supported on {path}"),
        )
    }

    /// 413 for bodies over the configured limit.
    pub fn payload_too_large(limit: usize) -> Self {
        ApiError::new(
            413,
            "payload_too_large",
            format!("request body exceeds the {limit}-byte limit"),
        )
    }

    /// 429 for admission-control rejections. `kind` distinguishes the
    /// queue-full shed (`overloaded`) from a per-tenant rate limit
    /// (`throttled`); the caller adds the `retry-after` header via
    /// [`ApiError::into_response_retry_after`].
    pub fn too_many_requests(kind: impl Into<String>, message: impl Into<String>) -> Self {
        ApiError::new(429, kind, message)
    }

    /// Like [`ApiError::into_response`], with a `retry-after` header
    /// telling the client when trying again is worthwhile (whole seconds,
    /// rounded up — zero would invite an immediate, equally-doomed retry).
    pub fn into_response_retry_after(self, after: std::time::Duration) -> Response {
        let secs = after.as_secs() + u64::from(after.subsec_nanos() > 0);
        let mut response = self.into_response();
        response
            .headers
            .push(("retry-after".into(), secs.max(1).to_string()));
        response
    }

    /// 500 for bugs (worker panics, poisoned locks).
    pub fn internal(message: impl Into<String>) -> Self {
        ApiError::new(500, "internal", message)
    }

    /// The JSON response for this error.
    pub fn into_response(self) -> Response {
        let status = self.status;
        // Error bodies always encode today, but this is the last rung of
        // the error ladder — if encoding ever fails, hand-rolled JSON
        // beats a panic that would drop the connection with no response.
        let body = serde_json::to_string(&self).unwrap_or_else(|_| {
            "{\"status\":500,\"kind\":\"internal\",\
             \"message\":\"error body failed to encode\"}"
                .to_string()
        });
        Response::json(status, body)
    }
}

impl From<TsExplainError> for ApiError {
    fn from(e: TsExplainError) -> Self {
        match &e {
            // The client's request (or row payload) is at fault.
            TsExplainError::InvalidRequest(_) => {
                ApiError::new(400, "invalid_request", e.to_string())
            }
            TsExplainError::Relation(_) => ApiError::new(400, "invalid_rows", e.to_string()),
            // Asking before any data arrived is a state conflict, not a
            // malformed request: the same call succeeds after appends.
            TsExplainError::Cube(CubeError::EmptyInput) => {
                ApiError::new(409, "no_data", e.to_string())
            }
            TsExplainError::SeriesTooShort(_) => {
                ApiError::new(409, "series_too_short", e.to_string())
            }
            _ => ApiError::internal(e.to_string()),
        }
    }
}

impl From<RegistryError> for ApiError {
    fn from(e: RegistryError) -> Self {
        match e {
            RegistryError::UnknownDataset(id) => {
                ApiError::new(404, "unknown_dataset", format!("unknown dataset {id}"))
            }
            RegistryError::Session(inner) => inner.into(),
            RegistryError::Poisoned(_) => ApiError::internal(e.to_string()),
        }
    }
}

impl Serialize for ApiError {
    fn serialize(&self) -> Value {
        let mut doc = Value::object([
            ("status", self.status.serialize()),
            ("kind", self.kind.serialize()),
            ("message", self.message.serialize()),
        ]);
        if let (Some(info), Value::Object(fields)) = (&self.deadline, &mut doc) {
            fields.insert("elapsed_ms".into(), info.elapsed_ms.serialize());
            fields.insert("budget_ms".into(), info.budget_ms.serialize());
        }
        doc
    }
}

impl Deserialize for ApiError {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        // Budget fields are additive: only deadline 504s carry them.
        let deadline = match (value.get("elapsed_ms"), value.get("budget_ms")) {
            (Some(elapsed), Some(budget)) => Some(DeadlineInfo {
                elapsed_ms: u64::deserialize(elapsed)?,
                budget_ms: u64::deserialize(budget)?,
            }),
            _ => None,
        };
        Ok(ApiError {
            status: value.field("status")?,
            kind: value.field("kind")?,
            message: value.field("message")?,
            deadline,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsexplain::InvalidRequest;

    #[test]
    fn engine_errors_map_to_stable_statuses() {
        let e: ApiError = TsExplainError::InvalidRequest(InvalidRequest::EmptyExplainBy).into();
        assert_eq!((e.status, e.kind.as_str()), (400, "invalid_request"));
        let e: ApiError = TsExplainError::Cube(CubeError::EmptyInput).into();
        assert_eq!((e.status, e.kind.as_str()), (409, "no_data"));
        let e: ApiError = RegistryError::UnknownDataset(tsexplain::DatasetId::from_u64(9)).into();
        assert_eq!((e.status, e.kind.as_str()), (404, "unknown_dataset"));
        assert!(e.message.contains('9'));
    }

    #[test]
    fn error_bodies_roundtrip_as_json() {
        let e = ApiError::bad_request("missing field `rows`");
        let response = e.clone().into_response();
        assert_eq!(response.status, 400);
        let text = String::from_utf8(response.body).unwrap();
        let back: ApiError = serde_json::from_str(&text).unwrap();
        assert_eq!(back, e);
    }
}
