//! # tsx-server
//!
//! A dependency-free, multi-threaded HTTP/1.1 + JSON serving subsystem
//! over the TSExplain session registry: the process boundary that turns
//! the library into a deployable service.
//!
//! ## Architecture
//!
//! ```text
//!        TcpListener ──► reactor thread (epoll multiplexer)
//!          │  over --max-conns?  ──► 429 + retry-after, close
//!          │  idle keep-alive    ──► parked in the epoll set
//!          ▼  readable                  ▲ idle again
//!        bounded queue (--queue-depth)  │
//!          │  full? ──► 429 shed        │
//!          ▼                            │
//!        WorkerPool (N threads) ── keep-alive HTTP/1.1 codec
//!          │  per-tenant token bucket (--tenant-rps) ──► 429
//!          ▼  admitted requests
//!        router  ── JSON wire protocol (serde layer)
//!          │
//!          ▼
//!        SessionRegistry (tsexplain)
//!          per-tenant Mutex<ExplainSession>
//!          global LRU-by-bytes cube eviction
//! ```
//!
//! Admission control (the 429 arms above) is entirely upstream of the
//! engine: it decides *whether* a request runs, never *what* the answer
//! contains, so the determinism contract is untouched. Shed and throttle
//! responses carry `retry-after` and an `x-request-id` like every other
//! response.
//!
//! ## Endpoints
//!
//! * `POST /datasets` — register a relation + aggregation query; returns
//!   the dataset (tenant) id.
//! * `POST /datasets/{id}/rows` — streaming append.
//! * `POST /datasets/{id}/explain` — an [`tsexplain::ExplainRequest`]
//!   body; returns the [`tsexplain::ExplainResult`] as JSON, identical to
//!   what an in-process session produces. The request's `segmenter` member
//!   selects the segmentation strategy (the DP or any §7.2 baseline).
//! * `POST /datasets/{id}/compare` — fan one request out across all four
//!   segmentation strategies; returns side-by-side results with
//!   `tsexplain-eval` distance/rank metrics.
//! * `GET /datasets/{id}/stats` — per-tenant session counters.
//! * `DELETE /datasets/{id}` — drop a tenant.
//! * `GET /metrics` — server + registry counters (cache bytes, evictions,
//!   response classes). `?format=prometheus` serves the same state as a
//!   Prometheus text exposition with per-route/per-strategy/per-tenant
//!   latency histograms (`tsexplain-obs`).
//! * `GET /debug/requests` — the slow-request flight recorder: the last N
//!   requests at or above `--slow-ms`, each with its span tree and the
//!   explain latency breakdown.
//! * `GET /healthz` — liveness.
//!
//! Every response carries an `x-request-id` header — the client's
//! `X-Request-Id` echoed when supplied, a process-unique id minted
//! otherwise — and the same id is stamped into log lines and flight
//! entries.
//!
//! Errors map to structured 4xx/5xx JSON bodies (see [`ApiError`]):
//! invalid requests and malformed rows are 400s, unknown datasets 404s,
//! explaining an empty dataset a 409, oversized bodies 413s, engine bugs
//! 500s (worker panics are caught and answered, never fatal).
//!
//! The [`Client`] speaks the same protocol for tests, examples and the
//! `loadgen` benchmark; the `tsx-server` binary wraps [`Server`] with
//! flags for the address, worker count and memory budget.
//!
//! ## Observability contract
//!
//! All instrumentation is a pure side channel: histograms, spans, flight
//! entries and log lines never feed back into an answer, spans are
//! recorded only on the thread running the request (parallel workers
//! no-op), and logs go to stderr — responses stay byte-identical at any
//! thread count, log level, or slow threshold.

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout)]
mod admission;
mod client;
mod error;
pub mod http;
mod pool;
mod reactor;
mod router;
mod server;
pub mod wire;

pub use client::{Client, ClientError, RetryPolicy};
pub use error::{ApiError, DeadlineInfo};
pub use pool::WorkerPool;
pub use router::handle;
pub use server::{Server, ServerConfig, ServerHandle, ServerMetrics, ServerObs, ServerShared};
