//! A fixed-size worker thread pool over an `mpsc` job queue.
//!
//! The acceptor thread pushes accepted connections; each worker pops one
//! and owns it for the whole keep-alive conversation. Dropping the
//! [`WorkerPool`] closes the queue, and `join` waits for workers to finish
//! their in-flight connections — the shutdown path needs no signalling
//! beyond the channel's own disconnect semantics.

use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A pool of `n` identical workers draining a job queue.
pub struct WorkerPool<J: Send + 'static> {
    sender: Option<Sender<J>>,
    workers: Vec<JoinHandle<()>>,
}

impl<J: Send + 'static> WorkerPool<J> {
    /// Spawns `n` workers, each running `work` on every job it pops.
    pub fn new<F>(n: usize, work: F) -> Self
    where
        F: Fn(J) + Send + Sync + 'static,
    {
        let (sender, receiver) = channel::<J>();
        let receiver = Arc::new(Mutex::new(receiver));
        let work = Arc::new(work);
        let workers = (0..n.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let work = Arc::clone(&work);
                std::thread::Builder::new()
                    .name(format!("tsx-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the queue lock only for the pop itself.
                        let job = {
                            let Ok(guard) = receiver.lock() else { return };
                            guard.recv()
                        };
                        match job {
                            Ok(job) => work(job),
                            Err(_) => return, // queue closed: shut down
                        }
                    })
                    .expect("spawning a worker thread")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Enqueues a job; returns it back if the pool already shut down.
    pub fn submit(&self, job: J) -> Result<(), J> {
        match &self.sender {
            Some(sender) => sender.send(job).map_err(|e| e.0),
            None => Err(job),
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Closes the queue and waits for every worker to drain and exit.
    pub fn join(mut self) {
        self.sender.take(); // disconnect: workers exit after the backlog
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl<J: Send + 'static> Drop for WorkerPool<J> {
    fn drop(&mut self) {
        self.sender.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_jobs_run_across_workers() {
        let counter = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&counter);
        let pool = WorkerPool::new(4, move |n: usize| {
            seen.fetch_add(n, Ordering::SeqCst);
        });
        assert_eq!(pool.size(), 4);
        for n in 1..=100 {
            pool.submit(n).unwrap();
        }
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 5050);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = WorkerPool::new(0, |_: ()| {});
        assert_eq!(pool.size(), 1);
        pool.join();
    }
}
