//! A fixed-size worker thread pool over a **bounded** job queue.
//!
//! The reactor pushes readable connections with [`WorkerPool::try_submit`]
//! — a non-blocking offer that reports a full queue instead of queueing
//! without limit, which is the hook admission control sheds on. The bound
//! is the backpressure contract: when every worker is busy and the queue
//! is full, the caller *knows*, immediately, on its own thread, and can
//! answer 429 instead of letting pending sockets pile up unserved until
//! their client gave up long ago.
//!
//! Dropping the [`WorkerPool`] closes the queue, and `join` waits for
//! workers to finish their in-flight jobs — the shutdown path needs no
//! signalling beyond the channel's own disconnect semantics.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Why [`WorkerPool::try_submit`] declined a job (the job comes back).
#[derive(Debug)]
pub enum SubmitError<J> {
    /// The queue is at capacity: every worker busy, every slot taken.
    /// The admission-control signal.
    QueueFull(J),
    /// The pool shut down.
    Closed(J),
}

/// A pool of `n` identical workers draining a bounded job queue.
pub struct WorkerPool<J: Send + 'static> {
    sender: Option<SyncSender<J>>,
    workers: Vec<JoinHandle<()>>,
    capacity: usize,
}

impl<J: Send + 'static> WorkerPool<J> {
    /// Spawns `n` workers over a queue holding at most `capacity` pending
    /// jobs (at least 1), each running `work` on every job it pops.
    pub fn bounded<F>(n: usize, capacity: usize, work: F) -> Self
    where
        F: Fn(J) + Send + Sync + 'static,
    {
        let capacity = capacity.max(1);
        let (sender, receiver) = sync_channel::<J>(capacity);
        let receiver = Arc::new(Mutex::new(receiver));
        let work = Arc::new(work);
        let workers = (0..n.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let work = Arc::clone(&work);
                std::thread::Builder::new()
                    .name(format!("tsx-worker-{i}"))
                    .spawn(move || worker_loop(&receiver, &*work))
                    // tsx-lint: allow(no-unwrap, boot-time spawn failure, before any request is in flight)
                    .expect("spawning a worker thread")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
            capacity,
        }
    }

    /// Offers a job without blocking. A full queue returns the job via
    /// [`SubmitError::QueueFull`] — the overload signal the caller sheds
    /// on instead of queueing unboundedly.
    pub fn try_submit(&self, job: J) -> Result<(), SubmitError<J>> {
        match &self.sender {
            Some(sender) => sender.try_send(job).map_err(|e| match e {
                TrySendError::Full(job) => SubmitError::QueueFull(job),
                TrySendError::Disconnected(job) => SubmitError::Closed(job),
            }),
            None => Err(SubmitError::Closed(job)),
        }
    }

    /// Enqueues a job, blocking while the queue is full; returns it back
    /// if the pool already shut down. Tests and non-admission callers.
    pub fn submit(&self, job: J) -> Result<(), J> {
        match &self.sender {
            Some(sender) => sender.send(job).map_err(|e| e.0),
            None => Err(job),
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// The queue bound jobs wait in (`--queue-depth`).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Closes the queue and waits for every worker to drain and exit.
    pub fn join(mut self) {
        self.sender.take(); // disconnect: workers exit after the backlog
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop<J, F: Fn(J)>(receiver: &Mutex<Receiver<J>>, work: &F) {
    loop {
        // Hold the queue lock only for the pop itself.
        let job = {
            let Ok(guard) = receiver.lock() else { return };
            guard.recv()
        };
        match job {
            Ok(job) => work(job),
            Err(_) => return, // queue closed: shut down
        }
    }
}

impl<J: Send + 'static> Drop for WorkerPool<J> {
    fn drop(&mut self) {
        self.sender.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn all_jobs_run_across_workers() {
        let counter = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&counter);
        let pool = WorkerPool::bounded(4, 128, move |n: usize| {
            seen.fetch_add(n, Ordering::SeqCst);
        });
        assert_eq!(pool.size(), 4);
        assert_eq!(pool.capacity(), 128);
        for n in 1..=100 {
            pool.submit(n).unwrap();
        }
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 5050);
    }

    #[test]
    fn zero_workers_and_zero_capacity_clamp_to_one() {
        let pool = WorkerPool::bounded(0, 0, |_: ()| {});
        assert_eq!(pool.size(), 1);
        assert_eq!(pool.capacity(), 1);
        pool.join();
    }

    #[test]
    fn a_full_queue_reports_queue_full_instead_of_blocking() {
        // One worker parked on a gate; capacity 2. Jobs 1 (in the worker)
        // plus 2 queued fit; the next try_submit must bounce, immediately.
        let gate = Arc::new(std::sync::Barrier::new(2));
        let enter = Arc::clone(&gate);
        let pool = WorkerPool::bounded(1, 2, move |_: usize| {
            enter.wait();
        });
        pool.try_submit(1).unwrap();
        // Give the worker a moment to pop job 1 and block on the gate.
        std::thread::sleep(Duration::from_millis(50));
        pool.try_submit(2).unwrap();
        pool.try_submit(3).unwrap();
        match pool.try_submit(4) {
            Err(SubmitError::QueueFull(4)) => {}
            other => panic!("expected QueueFull(4), got {other:?}"),
        }
        gate.wait(); // release job 1; the rest drain
        gate.wait();
        gate.wait();
        pool.join();
    }
}
