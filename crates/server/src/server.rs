//! The server proper: listener, acceptor thread, worker pool, metrics,
//! graceful shutdown.
//!
//! ```no_run
//! use tsexplain_server::{Server, ServerConfig};
//!
//! let handle = Server::bind(ServerConfig::default()).unwrap();
//! println!("tsx-server listening on http://{}", handle.local_addr());
//! handle.join(); // serve until shutdown() is called from another thread
//! ```

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use serde::{Serialize, Value};
use tsexplain::{DataStore, SessionRegistry, DEFAULT_REGISTRY_BUDGET};

use crate::error::ApiError;
use crate::http::{self, ReadError};
use crate::pool::WorkerPool;
use crate::router;

/// Tunables of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// The address to bind; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Global cube-memory budget handed to the [`SessionRegistry`].
    pub memory_budget: usize,
    /// Per-request body limit.
    pub max_body_bytes: usize,
    /// Read timeout per connection — the keep-alive idle cap, and the
    /// longest a shutdown waits for idle connections to drain.
    pub read_timeout: Duration,
    /// Default intra-query worker threads applied to requests that carry
    /// no explicit `threads` member (`tsx-server --threads`). `None`
    /// defers to the process default (`TSX_THREADS` / the machine).
    /// Results are byte-identical at any setting — the parallel layer's
    /// determinism contract.
    pub threads: Option<usize>,
    /// Data directory for the durable storage engine (`tsx-server
    /// --data-dir`). When set, the server recovers every tenant from it
    /// before accepting connections, WAL-logs each mutation before
    /// acknowledging it, and demotes budget-evicted cubes to it instead of
    /// dropping them. `None` (the default) serves purely in memory —
    /// byte-identical behavior to a server without the storage engine.
    pub data_dir: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
            memory_budget: DEFAULT_REGISTRY_BUDGET,
            max_body_bytes: http::DEFAULT_MAX_BODY_BYTES,
            read_timeout: Duration::from_secs(5),
            threads: None,
            data_dir: None,
        }
    }
}

/// Server-level counters (the `/metrics` payload's HTTP half).
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Requests answered with a response (including the 400/413 rejections
    /// of unparsable messages, which also count as `protocol_errors`).
    requests: AtomicU64,
    /// Responses by class.
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    /// Connections accepted.
    connections: AtomicU64,
    /// Requests that never parsed (protocol garbage, oversized).
    protocol_errors: AtomicU64,
    /// Worker panics converted to 500s.
    panics: AtomicU64,
    /// Cumulative engine wall-clock of answered explains (nanoseconds),
    /// summed from each result's `LatencyBreakdown::total`.
    explain_nanos: AtomicU64,
    /// Of `explain_nanos`: wall-clock spent inside intra-query parallel
    /// fan-out regions — the observable share of the parallel layer.
    parallel_nanos: AtomicU64,
    /// Explain/compare answers produced by a parallel context (threads
    /// > 1).
    parallel_explains: AtomicU64,
    /// Segment-cost memo hits across all answered explains — repeat
    /// pricings (and, under centroid metrics, top-m derivations) the
    /// per-request memo served instead of recomputing.
    memo_hits: AtomicU64,
    /// Segment-cost memo misses (costs computed and cached).
    memo_misses: AtomicU64,
}

impl ServerMetrics {
    fn observe(&self, status: u16) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let class = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
    }

    /// Accumulates one answered explain's latency breakdown (router-side;
    /// includes every `/compare` strategy row).
    pub(crate) fn observe_latency(&self, latency: &tsexplain::LatencyBreakdown) {
        self.explain_nanos
            .fetch_add(latency.total().as_nanos() as u64, Ordering::Relaxed);
        self.parallel_nanos.fetch_add(
            latency.parallel_total().as_nanos() as u64,
            Ordering::Relaxed,
        );
        if latency.parallel.threads > 1 {
            self.parallel_explains.fetch_add(1, Ordering::Relaxed);
        }
        self.memo_hits
            .fetch_add(latency.memo.hits, Ordering::Relaxed);
        self.memo_misses
            .fetch_add(latency.memo.misses, Ordering::Relaxed);
    }

    /// Records a `/compare` strategy fan-out of `width` concurrent
    /// workers — the cross-strategy half of the parallelism, which the
    /// per-row latency blocks (reporting each strategy's *inner* thread
    /// share) would otherwise undercount.
    pub(crate) fn observe_fanout(&self, width: usize) {
        if width > 1 {
            self.parallel_explains.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// State shared by every worker: the tenant registry plus counters.
#[derive(Debug)]
pub struct ServerShared {
    /// The multi-tenant session registry behind every endpoint.
    pub registry: SessionRegistry,
    /// HTTP-level counters.
    pub metrics: ServerMetrics,
    workers: usize,
    /// The server-wide intra-query thread default (`--threads`), applied
    /// by the router to requests without their own `threads` member.
    pub(crate) threads: Option<usize>,
}

impl ServerShared {
    /// The `/metrics` JSON document: HTTP counters + registry counters,
    /// plus a `store` block when a durable data dir backs the process.
    pub fn metrics_value(&self) -> Value {
        let m = &self.metrics;
        let r = self.registry.stats();
        let mut doc = Value::object([
            (
                "server",
                Value::object([
                    ("workers", self.workers.serialize()),
                    (
                        "connections",
                        m.connections.load(Ordering::Relaxed).serialize(),
                    ),
                    ("requests", m.requests.load(Ordering::Relaxed).serialize()),
                    (
                        "responses",
                        Value::object([
                            ("2xx", m.responses_2xx.load(Ordering::Relaxed).serialize()),
                            ("4xx", m.responses_4xx.load(Ordering::Relaxed).serialize()),
                            ("5xx", m.responses_5xx.load(Ordering::Relaxed).serialize()),
                        ]),
                    ),
                    (
                        "protocol_errors",
                        m.protocol_errors.load(Ordering::Relaxed).serialize(),
                    ),
                    ("panics", m.panics.load(Ordering::Relaxed).serialize()),
                    (
                        "parallel",
                        Value::object([
                            (
                                "default_threads",
                                match self.threads {
                                    Some(t) => t.serialize(),
                                    None => {
                                        tsexplain::ParallelCtx::from_env().threads().serialize()
                                    }
                                },
                            ),
                            (
                                "explain_nanos",
                                m.explain_nanos.load(Ordering::Relaxed).serialize(),
                            ),
                            (
                                "parallel_nanos",
                                m.parallel_nanos.load(Ordering::Relaxed).serialize(),
                            ),
                            (
                                "parallel_explains",
                                m.parallel_explains.load(Ordering::Relaxed).serialize(),
                            ),
                        ]),
                    ),
                    (
                        "memo",
                        Value::object([
                            ("hits", m.memo_hits.load(Ordering::Relaxed).serialize()),
                            ("misses", m.memo_misses.load(Ordering::Relaxed).serialize()),
                        ]),
                    ),
                ]),
            ),
            (
                "registry",
                Value::object([
                    ("datasets", r.datasets.serialize()),
                    ("cached_cubes", r.cached_cubes.serialize()),
                    ("cache_bytes", r.cache_bytes.serialize()),
                    ("memory_budget", r.memory_budget.serialize()),
                    ("totals", crate::wire::session_stats_value(&r.totals)),
                ]),
            ),
        ]);
        if let Some(store) = self.registry.store() {
            let s = store.metrics();
            if let Value::Object(fields) = &mut doc {
                fields.insert(
                    "store".into(),
                    Value::object([
                        ("wal_appends", s.wal_appends.serialize()),
                        ("wal_bytes", s.wal_bytes.serialize()),
                        ("snapshots", s.snapshots.serialize()),
                        ("recoveries", s.recoveries.serialize()),
                        ("demotions", s.demotions.serialize()),
                        ("rehydrations", s.rehydrations.serialize()),
                    ]),
                );
            }
        }
        doc
    }
}

/// The serving subsystem: a bound listener draining into a worker pool.
pub struct Server;

impl Server {
    /// Binds `config.addr` and starts accepting. Returns immediately; the
    /// acceptor and workers run on background threads until
    /// [`ServerHandle::shutdown`].
    pub fn bind(config: ServerConfig) -> std::io::Result<ServerHandle> {
        // Recovery runs before the listener accepts anything: the first
        // connection already sees every surviving tenant.
        let registry = match &config.data_dir {
            Some(dir) => {
                let (store, recovery) = DataStore::open(dir).map_err(std::io::Error::other)?;
                let recovered = recovery.tenants.len();
                let discarded = recovery.discarded_bytes;
                let (registry, notes) =
                    SessionRegistry::with_store(config.memory_budget, Arc::new(store), recovery);
                for note in &notes {
                    eprintln!("tsx-server: recovery: {note}");
                }
                println!(
                    "tsx-server recovered {recovered} dataset(s) from {} \
                     ({discarded} bytes discarded, {} note(s))",
                    dir.display(),
                    notes.len(),
                );
                registry
            }
            None => SessionRegistry::with_memory_budget(config.memory_budget),
        };
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            registry,
            metrics: ServerMetrics::default(),
            workers: config.workers.max(1),
            threads: config.threads,
        });
        let stopping = Arc::new(AtomicBool::new(false));

        let pool = {
            let shared = Arc::clone(&shared);
            let stopping = Arc::clone(&stopping);
            let config = config.clone();
            WorkerPool::new(config.workers, move |stream: TcpStream| {
                serve_connection(&shared, stream, &config, &stopping);
            })
        };

        let acceptor = {
            let shared = Arc::clone(&shared);
            let stopping = Arc::clone(&stopping);
            std::thread::Builder::new()
                .name("tsx-acceptor".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stopping.load(Ordering::SeqCst) {
                            break;
                        }
                        match stream {
                            Ok(stream) => {
                                shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                                if pool.submit(stream).is_err() {
                                    break;
                                }
                            }
                            Err(_) => continue,
                        }
                    }
                    // Dropping the pool closes the queue and joins workers.
                    pool.join();
                })?
        };

        Ok(ServerHandle {
            local_addr,
            shared,
            stopping,
            acceptor: Some(acceptor),
        })
    }
}

/// A running server: address, shared state, and the shutdown switch.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    stopping: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared state (registry + metrics) — useful for in-process
    /// assertions in tests and benches.
    pub fn shared(&self) -> &ServerShared {
        &self.shared
    }

    /// Stops accepting, drains in-flight connections and joins every
    /// thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor's blocking `incoming()` with a no-op
        // connection; it observes the flag and exits.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }

    /// Blocks until the server shuts down (another thread must call
    /// [`ServerHandle::shutdown`], or the process runs forever — the
    /// standalone binary's serving mode).
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One keep-alive conversation: parse, dispatch, respond, repeat. The
/// conversation ends at client close, protocol error, idle timeout, or
/// server shutdown (checked between requests; in-flight requests always
/// get their response).
fn serve_connection(
    shared: &ServerShared,
    stream: TcpStream,
    config: &ServerConfig,
    stopping: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match http::read_request(&mut reader, config.max_body_bytes) {
            Ok(request) => request,
            Err(ReadError::ConnectionClosed) => return,
            Err(ReadError::TooLarge { limit, .. }) => {
                shared
                    .metrics
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let response = ApiError::payload_too_large(limit).into_response();
                shared.metrics.observe(response.status);
                let _ = response.write_to(&mut writer, false);
                return;
            }
            Err(ReadError::Malformed(m)) => {
                shared
                    .metrics
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let response =
                    ApiError::bad_request(format!("malformed HTTP: {m}")).into_response();
                shared.metrics.observe(response.status);
                let _ = response.write_to(&mut writer, false);
                return;
            }
            Err(ReadError::Io(_)) => {
                // A transport failure or the keep-alive idle timeout
                // reaping a quiet connection — routine connection
                // lifecycle, not client garbage; no counter.
                return;
            }
        };
        let keep_alive = !request.wants_close() && !stopping.load(Ordering::SeqCst);
        // A panic in the engine must cost one 500, not a worker thread.
        let response = match catch_unwind(AssertUnwindSafe(|| router::handle(shared, &request))) {
            Ok(response) => response,
            Err(_) => {
                shared.metrics.panics.fetch_add(1, Ordering::Relaxed);
                ApiError::internal("worker panicked while handling the request").into_response()
            }
        };
        shared.metrics.observe(response.status);
        if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}
