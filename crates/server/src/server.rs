//! The server proper: an epoll reactor multiplexing connections into a
//! bounded worker pool, admission control, metrics, graceful shutdown.
//!
//! Connection flow: the reactor thread ([`crate::reactor`]) owns the
//! listener and every idle connection; readable connections are handed to
//! the worker pool through a bounded queue (full queue ⇒ 429 shed), and
//! workers hand keep-alive connections back to the reactor between
//! requests. Per-tenant token buckets ([`crate::admission`]) run in the
//! worker once the request's path names a tenant.
//!
//! ```no_run
//! use tsexplain_server::{Server, ServerConfig};
//!
//! let handle = Server::bind(ServerConfig::default()).unwrap();
//! println!("tsx-server listening on http://{}", handle.local_addr());
//! handle.join(); // serve until shutdown() is called from another thread
//! ```

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::{Serialize, Value};
use tsexplain::{DataStore, SessionRegistry, DEFAULT_REGISTRY_BUDGET};
use tsexplain_epoll::Waker;
use tsexplain_obs::{
    trace, CounterFamily, Exposition, FlightEntry, FlightRecorder, HistogramFamily,
};

use crate::admission::TokenBuckets;
use crate::error::ApiError;
use crate::http::{self, ReadError};
use crate::pool::WorkerPool;
use crate::reactor::{self, Reactor};
use crate::router;

/// Tunables of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// The address to bind; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Global cube-memory budget handed to the [`SessionRegistry`].
    pub memory_budget: usize,
    /// Per-request body limit.
    pub max_body_bytes: usize,
    /// Idle cap per connection, measured from accept (`tsx-server
    /// --read-timeout-ms` is not exposed; this rides on the same knob as
    /// before): the reactor reaps parked connections idle this long, and
    /// workers use it as their per-read timeout against stalled senders.
    pub read_timeout: Duration,
    /// Open-connection admission limit (`tsx-server --max-conns`).
    /// Arrivals beyond it are answered 429 and closed at accept.
    pub max_conns: usize,
    /// Bound of the pending-request queue between the reactor and the
    /// workers (`tsx-server --queue-depth`). A readable connection that
    /// finds the queue full is shed with a 429 instead of waiting.
    pub queue_depth: usize,
    /// Per-tenant admission rate in requests/second (`tsx-server
    /// --tenant-rps`). Zero (the default) disables per-tenant limits.
    /// Tenants are keyed by dataset id, the same axis as
    /// `tsx_tenant_request_duration_seconds`.
    pub tenant_rps: f64,
    /// Default intra-query worker threads applied to requests that carry
    /// no explicit `threads` member (`tsx-server --threads`). `None`
    /// defers to the process default (`TSX_THREADS` / the machine).
    /// Results are byte-identical at any setting — the parallel layer's
    /// determinism contract.
    pub threads: Option<usize>,
    /// Data directory for the durable storage engine (`tsx-server
    /// --data-dir`). When set, the server recovers every tenant from it
    /// before accepting connections, WAL-logs each mutation before
    /// acknowledging it, and demotes budget-evicted cubes to it instead of
    /// dropping them. `None` (the default) serves purely in memory —
    /// byte-identical behavior to a server without the storage engine.
    pub data_dir: Option<std::path::PathBuf>,
    /// Requests at or above this wall-clock threshold land in the
    /// slow-request flight recorder (`GET /debug/requests`). Zero records
    /// every request.
    pub slow_ms: u64,
    /// Server-wide request deadline cap (`tsx-server --request-timeout-ms`).
    /// When set, every explain/compare is minted a [`tsexplain::Deadline`]
    /// of at most this budget (a wire `timeout_ms` can tighten it, never
    /// loosen it) and compute is cooperatively cancelled once it trips —
    /// the request 504s with `kind=deadline_exceeded` and the worker is
    /// freed. `None` (the default) runs requests unbounded, byte-identical
    /// to a server without the deadline layer; a wire `timeout_ms` still
    /// applies to its own request.
    pub request_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
            memory_budget: DEFAULT_REGISTRY_BUDGET,
            max_body_bytes: http::DEFAULT_MAX_BODY_BYTES,
            read_timeout: Duration::from_secs(5),
            max_conns: 4096,
            queue_depth: 1024,
            tenant_rps: 0.0,
            threads: None,
            data_dir: None,
            slow_ms: 500,
            request_timeout: None,
        }
    }
}

/// How many slow requests the flight recorder retains.
const FLIGHT_CAPACITY: usize = 64;

/// Server-level counters (the `/metrics` payload's HTTP half).
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Requests answered with a response (including the 400/413 rejections
    /// of unparsable messages, which also count as `protocol_errors`).
    requests: AtomicU64,
    /// Responses by class.
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    /// Connections accepted (including those shed at accept).
    pub(crate) connections: AtomicU64,
    /// Connections answered 429 by admission control — at accept (over
    /// `--max-conns`) or at dispatch (pending-request queue full).
    pub(crate) shed: AtomicU64,
    /// Requests rejected 429 by a per-tenant rate limit.
    pub(crate) throttled: AtomicU64,
    /// Idle connections closed by the reactor's sweep.
    pub(crate) idle_reaped: AtomicU64,
    /// Gauge: connections currently open (parked or in a worker).
    pub(crate) open_connections: AtomicU64,
    /// Gauge: readable connections waiting in the worker queue.
    pub(crate) queue_depth: AtomicU64,
    /// Gauge: idle keep-alive connections parked in the epoll set.
    pub(crate) parked_connections: AtomicU64,
    /// Requests that never parsed (protocol garbage, oversized).
    protocol_errors: AtomicU64,
    /// Worker panics converted to 500s.
    panics: AtomicU64,
    /// Cumulative engine wall-clock of answered explains (nanoseconds),
    /// summed from each result's `LatencyBreakdown::total`.
    explain_nanos: AtomicU64,
    /// Of `explain_nanos`: wall-clock spent inside intra-query parallel
    /// fan-out regions — the observable share of the parallel layer.
    parallel_nanos: AtomicU64,
    /// Explain/compare answers produced by a parallel context (threads
    /// > 1).
    parallel_explains: AtomicU64,
    /// Segment-cost memo hits across all answered explains — repeat
    /// pricings (and, under centroid metrics, top-m derivations) the
    /// per-request memo served instead of recomputing.
    memo_hits: AtomicU64,
    /// Segment-cost memo misses (costs computed and cached).
    memo_misses: AtomicU64,
    /// Requests answered 504 because their deadline tripped (server cap or
    /// wire `timeout_ms`).
    pub(crate) deadline_exceeded: AtomicU64,
    /// Of `deadline_exceeded`: requests whose cancellation tripped *after*
    /// engine compute had begun (stage other than "start") — in-flight
    /// work that was cooperatively abandoned and discarded.
    pub(crate) cancelled_inflight: AtomicU64,
}

impl ServerMetrics {
    pub(crate) fn observe(&self, status: u16) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let class = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
    }

    /// Accumulates one answered explain's latency breakdown (router-side;
    /// includes every `/compare` strategy row).
    pub(crate) fn observe_latency(&self, latency: &tsexplain::LatencyBreakdown) {
        self.explain_nanos
            .fetch_add(latency.total().as_nanos() as u64, Ordering::Relaxed);
        self.parallel_nanos.fetch_add(
            latency.parallel_total().as_nanos() as u64,
            Ordering::Relaxed,
        );
        if latency.parallel.threads > 1 {
            self.parallel_explains.fetch_add(1, Ordering::Relaxed);
        }
        self.memo_hits
            .fetch_add(latency.memo.hits, Ordering::Relaxed);
        self.memo_misses
            .fetch_add(latency.memo.misses, Ordering::Relaxed);
    }

    /// Records a `/compare` strategy fan-out of `width` concurrent
    /// workers — the cross-strategy half of the parallelism, which the
    /// per-row latency blocks (reporting each strategy's *inner* thread
    /// share) would otherwise undercount.
    pub(crate) fn observe_fanout(&self, width: usize) {
        if width > 1 {
            self.parallel_explains.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Observability state shared by every worker: latency histograms and
/// the slow-request flight recorder. All of it is a side channel — it
/// never feeds back into request handling.
#[derive(Debug)]
pub struct ServerObs {
    /// Wall-clock request latency by route label.
    pub route_hist: HistogramFamily,
    /// Engine explain latency (`LatencyBreakdown::total`) by strategy.
    pub strategy_hist: HistogramFamily,
    /// Wall-clock request latency by tenant (dataset id).
    pub tenant_hist: HistogramFamily,
    /// Per-tenant rate-limit rejections, keyed like `tenant_hist` so a
    /// tenant's throttles and its latency read off the same label axis.
    pub tenant_throttled: CounterFamily,
    /// The last N requests over the `--slow-ms` threshold.
    pub flight: FlightRecorder,
}

impl ServerObs {
    fn new(slow: Duration) -> Self {
        ServerObs {
            route_hist: HistogramFamily::new(),
            strategy_hist: HistogramFamily::new(),
            tenant_hist: HistogramFamily::new(),
            tenant_throttled: CounterFamily::new(),
            flight: FlightRecorder::new(FLIGHT_CAPACITY, slow),
        }
    }
}

/// State shared by every worker: the tenant registry plus counters.
#[derive(Debug)]
pub struct ServerShared {
    /// The multi-tenant session registry behind every endpoint.
    pub registry: SessionRegistry,
    /// HTTP-level counters.
    pub metrics: ServerMetrics,
    /// Histograms and the flight recorder.
    pub obs: ServerObs,
    workers: usize,
    /// Open-connection admission limit (`--max-conns`).
    pub(crate) max_conns: usize,
    /// Bound of the pending-request queue (`--queue-depth`).
    pub(crate) queue_capacity: usize,
    /// Per-tenant admission rate (`--tenant-rps`); zero = unlimited.
    pub(crate) tenant_rps: f64,
    /// The per-tenant token buckets, present when `tenant_rps > 0`.
    pub(crate) admission: Option<TokenBuckets>,
    /// The server-wide intra-query thread default (`--threads`), applied
    /// by the router to requests without their own `threads` member.
    pub(crate) threads: Option<usize>,
    /// The server-wide deadline cap (`--request-timeout-ms`); the router
    /// mints each explain/compare deadline from it plus the request's own
    /// wire `timeout_ms`.
    pub(crate) request_timeout: Option<Duration>,
}

impl ServerShared {
    /// The `/metrics` JSON document: HTTP counters + registry counters,
    /// plus a `store` block when a durable data dir backs the process.
    pub fn metrics_value(&self) -> Value {
        let m = &self.metrics;
        let r = self.registry.stats();
        let mut doc = Value::object([
            (
                "server",
                Value::object([
                    ("workers", self.workers.serialize()),
                    (
                        "connections",
                        m.connections.load(Ordering::Relaxed).serialize(),
                    ),
                    ("requests", m.requests.load(Ordering::Relaxed).serialize()),
                    (
                        "responses",
                        Value::object([
                            ("2xx", m.responses_2xx.load(Ordering::Relaxed).serialize()),
                            ("4xx", m.responses_4xx.load(Ordering::Relaxed).serialize()),
                            ("5xx", m.responses_5xx.load(Ordering::Relaxed).serialize()),
                        ]),
                    ),
                    (
                        "protocol_errors",
                        m.protocol_errors.load(Ordering::Relaxed).serialize(),
                    ),
                    ("panics", m.panics.load(Ordering::Relaxed).serialize()),
                    (
                        "admission",
                        Value::object([
                            ("max_connections", self.max_conns.serialize()),
                            (
                                "open_connections",
                                m.open_connections.load(Ordering::Relaxed).serialize(),
                            ),
                            (
                                "parked_connections",
                                m.parked_connections.load(Ordering::Relaxed).serialize(),
                            ),
                            ("queue_capacity", self.queue_capacity.serialize()),
                            (
                                "queue_depth",
                                m.queue_depth.load(Ordering::Relaxed).serialize(),
                            ),
                            ("shed", m.shed.load(Ordering::Relaxed).serialize()),
                            ("throttled", m.throttled.load(Ordering::Relaxed).serialize()),
                            (
                                "idle_reaped",
                                m.idle_reaped.load(Ordering::Relaxed).serialize(),
                            ),
                            ("tenant_rps", Value::Number(self.tenant_rps)),
                        ]),
                    ),
                    (
                        "parallel",
                        Value::object([
                            (
                                "default_threads",
                                match self.threads {
                                    Some(t) => t.serialize(),
                                    None => {
                                        tsexplain::ParallelCtx::from_env().threads().serialize()
                                    }
                                },
                            ),
                            (
                                "explain_nanos",
                                m.explain_nanos.load(Ordering::Relaxed).serialize(),
                            ),
                            (
                                "parallel_nanos",
                                m.parallel_nanos.load(Ordering::Relaxed).serialize(),
                            ),
                            (
                                "parallel_explains",
                                m.parallel_explains.load(Ordering::Relaxed).serialize(),
                            ),
                        ]),
                    ),
                    (
                        "memo",
                        Value::object([
                            ("hits", m.memo_hits.load(Ordering::Relaxed).serialize()),
                            ("misses", m.memo_misses.load(Ordering::Relaxed).serialize()),
                        ]),
                    ),
                    (
                        "deadlines",
                        Value::object([
                            (
                                "request_timeout_ms",
                                match self.request_timeout {
                                    Some(cap) => (cap.as_millis() as u64).serialize(),
                                    None => Value::Null,
                                },
                            ),
                            (
                                "deadline_exceeded",
                                m.deadline_exceeded.load(Ordering::Relaxed).serialize(),
                            ),
                            (
                                "cancelled_inflight",
                                m.cancelled_inflight.load(Ordering::Relaxed).serialize(),
                            ),
                        ]),
                    ),
                ]),
            ),
            (
                "registry",
                Value::object([
                    ("datasets", r.datasets.serialize()),
                    ("cached_cubes", r.cached_cubes.serialize()),
                    ("cache_bytes", r.cache_bytes.serialize()),
                    ("memory_budget", r.memory_budget.serialize()),
                    ("totals", crate::wire::session_stats_value(&r.totals)),
                ]),
            ),
        ]);
        if let Some(store) = self.registry.store() {
            let s = store.metrics();
            if let Value::Object(fields) = &mut doc {
                fields.insert(
                    "store".into(),
                    Value::object([
                        ("wal_appends", s.wal_appends.serialize()),
                        ("wal_bytes", s.wal_bytes.serialize()),
                        ("snapshots", s.snapshots.serialize()),
                        ("recoveries", s.recoveries.serialize()),
                        ("demotions", s.demotions.serialize()),
                        ("rehydrations", s.rehydrations.serialize()),
                    ]),
                );
            }
        }
        doc
    }

    /// The `/metrics?format=prometheus` exposition: the same counters as
    /// the JSON document plus the latency histograms (per-route,
    /// per-strategy, per-tenant, and the store's fsync/checkpoint/recovery
    /// durations) that have no JSON equivalent. Metric names, label order
    /// and bucket boundaries are stable — a scrape target, not an API to
    /// iterate on.
    pub fn metrics_prometheus(&self) -> String {
        let m = &self.metrics;
        let r = self.registry.stats();
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed) as f64;
        let mut exp = Exposition::new();

        exp.header(
            "tsx_requests_total",
            "counter",
            "Requests answered with a response.",
        );
        exp.sample("tsx_requests_total", &[], load(&m.requests));
        exp.header(
            "tsx_responses_total",
            "counter",
            "Responses by status class.",
        );
        for (class, counter) in [
            ("2xx", &m.responses_2xx),
            ("4xx", &m.responses_4xx),
            ("5xx", &m.responses_5xx),
        ] {
            exp.sample("tsx_responses_total", &[("class", class)], load(counter));
        }
        exp.header("tsx_connections_total", "counter", "Connections accepted.");
        exp.sample("tsx_connections_total", &[], load(&m.connections));
        exp.header(
            "tsx_shed_total",
            "counter",
            "Connections answered 429 by admission control (connection limit or full queue).",
        );
        exp.sample("tsx_shed_total", &[], load(&m.shed));
        exp.header(
            "tsx_throttled_total",
            "counter",
            "Requests rejected 429 by per-tenant rate limits.",
        );
        exp.sample("tsx_throttled_total", &[], load(&m.throttled));
        exp.header(
            "tsx_idle_reaped_total",
            "counter",
            "Idle connections closed by the reactor's sweep.",
        );
        exp.sample("tsx_idle_reaped_total", &[], load(&m.idle_reaped));
        exp.header(
            "tsx_tenant_throttled_total",
            "counter",
            "Per-tenant rate-limit rejections, by tenant (dataset id).",
        );
        for (tenant, value) in self.obs.tenant_throttled.snapshot_all() {
            exp.sample(
                "tsx_tenant_throttled_total",
                &[("tenant", &tenant)],
                value as f64,
            );
        }
        exp.header(
            "tsx_protocol_errors_total",
            "counter",
            "Requests that never parsed (protocol garbage, oversized).",
        );
        exp.sample("tsx_protocol_errors_total", &[], load(&m.protocol_errors));
        exp.header(
            "tsx_panics_total",
            "counter",
            "Worker panics converted to 500s.",
        );
        exp.sample("tsx_panics_total", &[], load(&m.panics));
        exp.header(
            "tsx_parallel_explains_total",
            "counter",
            "Explain answers produced by a parallel context.",
        );
        exp.sample(
            "tsx_parallel_explains_total",
            &[],
            load(&m.parallel_explains),
        );
        exp.header(
            "tsx_memo_hits_total",
            "counter",
            "Segment-cost memo hits across answered explains.",
        );
        exp.sample("tsx_memo_hits_total", &[], load(&m.memo_hits));
        exp.header(
            "tsx_memo_misses_total",
            "counter",
            "Segment-cost memo misses across answered explains.",
        );
        exp.sample("tsx_memo_misses_total", &[], load(&m.memo_misses));
        exp.header(
            "tsx_deadline_exceeded_total",
            "counter",
            "Requests answered 504 because their deadline tripped.",
        );
        exp.sample(
            "tsx_deadline_exceeded_total",
            &[],
            load(&m.deadline_exceeded),
        );
        exp.header(
            "tsx_cancelled_inflight_total",
            "counter",
            "Deadline 504s whose cancellation tripped after engine compute began.",
        );
        exp.sample(
            "tsx_cancelled_inflight_total",
            &[],
            load(&m.cancelled_inflight),
        );

        exp.header("tsx_workers", "gauge", "Worker threads handling requests.");
        exp.sample("tsx_workers", &[], self.workers as f64);
        exp.header(
            "tsx_max_connections",
            "gauge",
            "Open-connection admission limit (--max-conns).",
        );
        exp.sample("tsx_max_connections", &[], self.max_conns as f64);
        exp.header(
            "tsx_open_connections",
            "gauge",
            "Connections currently open (parked or in a worker).",
        );
        exp.sample("tsx_open_connections", &[], load(&m.open_connections));
        exp.header(
            "tsx_parked_connections",
            "gauge",
            "Idle keep-alive connections parked in the epoll set.",
        );
        exp.sample("tsx_parked_connections", &[], load(&m.parked_connections));
        exp.header(
            "tsx_queue_capacity",
            "gauge",
            "Bound of the pending-request queue (--queue-depth).",
        );
        exp.sample("tsx_queue_capacity", &[], self.queue_capacity as f64);
        exp.header(
            "tsx_queue_depth",
            "gauge",
            "Readable connections waiting in the worker queue.",
        );
        exp.sample("tsx_queue_depth", &[], load(&m.queue_depth));
        exp.header("tsx_registry_datasets", "gauge", "Registered datasets.");
        exp.sample("tsx_registry_datasets", &[], r.datasets as f64);
        exp.header(
            "tsx_registry_cached_cubes",
            "gauge",
            "Cubes resident in memory across all tenants.",
        );
        exp.sample("tsx_registry_cached_cubes", &[], r.cached_cubes as f64);
        exp.header(
            "tsx_registry_cache_bytes",
            "gauge",
            "Estimated bytes held by cached cubes.",
        );
        exp.sample("tsx_registry_cache_bytes", &[], r.cache_bytes as f64);
        exp.header(
            "tsx_registry_memory_budget_bytes",
            "gauge",
            "The registry's global cube-memory budget.",
        );
        exp.sample(
            "tsx_registry_memory_budget_bytes",
            &[],
            r.memory_budget as f64,
        );

        exp.header(
            "tsx_request_duration_seconds",
            "histogram",
            "Wall-clock request latency by route.",
        );
        for (route, snap) in self.obs.route_hist.snapshot_all() {
            exp.histogram("tsx_request_duration_seconds", &[("route", &route)], &snap);
        }
        exp.header(
            "tsx_explain_duration_seconds",
            "histogram",
            "Engine explain latency by segmentation strategy.",
        );
        for (strategy, snap) in self.obs.strategy_hist.snapshot_all() {
            exp.histogram(
                "tsx_explain_duration_seconds",
                &[("strategy", &strategy)],
                &snap,
            );
        }
        exp.header(
            "tsx_tenant_request_duration_seconds",
            "histogram",
            "Wall-clock request latency by tenant (dataset id).",
        );
        for (tenant, snap) in self.obs.tenant_hist.snapshot_all() {
            exp.histogram(
                "tsx_tenant_request_duration_seconds",
                &[("tenant", &tenant)],
                &snap,
            );
        }

        if let Some(store) = self.registry.store() {
            let s = store.metrics();
            for (name, help, value) in [
                (
                    "tsx_store_wal_appends_total",
                    "WAL records appended.",
                    s.wal_appends,
                ),
                (
                    "tsx_store_wal_bytes_total",
                    "Framed WAL bytes written.",
                    s.wal_bytes,
                ),
                (
                    "tsx_store_snapshots_total",
                    "Snapshot files written.",
                    s.snapshots,
                ),
                (
                    "tsx_store_recoveries_total",
                    "Tenants reconstructed by recovery-on-boot.",
                    s.recoveries,
                ),
                (
                    "tsx_store_demotions_total",
                    "Cubes demoted to disk by the eviction tier.",
                    s.demotions,
                ),
                (
                    "tsx_store_rehydrations_total",
                    "Cubes rehydrated from disk on a cache miss.",
                    s.rehydrations,
                ),
            ] {
                exp.header(name, "counter", help);
                exp.sample(name, &[], value as f64);
            }
            let d = store.durations();
            for (name, help, hist) in [
                (
                    "tsx_store_fsync_duration_seconds",
                    "Per-append WAL fsync time.",
                    &d.fsync,
                ),
                (
                    "tsx_store_checkpoint_duration_seconds",
                    "Full checkpoint cycles.",
                    &d.checkpoint,
                ),
                (
                    "tsx_store_recovery_duration_seconds",
                    "Recovery-on-boot, once per open.",
                    &d.recovery,
                ),
            ] {
                exp.header(name, "histogram", help);
                exp.histogram(name, &[], &hist.snapshot());
            }
        }
        exp.finish()
    }
}

/// The serving subsystem: an epoll reactor draining into a bounded
/// worker pool.
pub struct Server;

impl Server {
    /// Binds `config.addr` and starts serving. Returns immediately; the
    /// reactor and workers run on background threads until
    /// [`ServerHandle::shutdown`]. Epoll setup failures (unsupported
    /// platform, fd exhaustion) surface here, not from a background
    /// thread.
    pub fn bind(config: ServerConfig) -> std::io::Result<ServerHandle> {
        // Recovery runs before the listener accepts anything: the first
        // connection already sees every surviving tenant.
        let registry = match &config.data_dir {
            Some(dir) => {
                let (store, recovery) = DataStore::open(dir).map_err(std::io::Error::other)?;
                let recovered = recovery.tenants.len();
                let discarded = recovery.discarded_bytes;
                let (registry, notes) =
                    SessionRegistry::with_store(config.memory_budget, Arc::new(store), recovery);
                for note in &notes {
                    tsexplain_obs::log::warn(
                        "server",
                        "recovery note",
                        &[("note", Value::String(note.clone()))],
                    );
                }
                tsexplain_obs::log::info(
                    "server",
                    "recovery complete",
                    &[
                        ("data_dir", Value::String(dir.display().to_string())),
                        ("datasets", Value::Number(recovered as f64)),
                        ("discarded_bytes", Value::Number(discarded as f64)),
                        ("notes", Value::Number(notes.len() as f64)),
                    ],
                );
                registry
            }
            None => SessionRegistry::with_memory_budget(config.memory_budget),
        };
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let waker = Arc::new(Waker::new()?);
        let poller = reactor::build_poller(&listener, &waker)?;
        let max_conns = config.max_conns.max(1);
        let queue_depth = config.queue_depth.max(1);
        let shared = Arc::new(ServerShared {
            registry,
            metrics: ServerMetrics::default(),
            obs: ServerObs::new(Duration::from_millis(config.slow_ms)),
            workers: config.workers.max(1),
            max_conns,
            queue_capacity: queue_depth,
            tenant_rps: config.tenant_rps,
            admission: (config.tenant_rps > 0.0).then(|| TokenBuckets::new(config.tenant_rps)),
            threads: config.threads,
            request_timeout: config.request_timeout,
        });
        let stopping = Arc::new(AtomicBool::new(false));
        let (returns_tx, returns_rx) = std::sync::mpsc::channel::<TcpStream>();

        let pool = {
            let shared = Arc::clone(&shared);
            let stopping = Arc::clone(&stopping);
            let waker = Arc::clone(&waker);
            let config = config.clone();
            WorkerPool::bounded(
                config.workers.max(1),
                queue_depth,
                move |stream: TcpStream| {
                    serve_ready(&shared, stream, &config, &stopping, &returns_tx, &waker);
                },
            )
        };

        let reactor = Reactor {
            poller,
            waker: Arc::clone(&waker),
            listener,
            pool,
            returns: returns_rx,
            shared: Arc::clone(&shared),
            stopping: Arc::clone(&stopping),
            max_conns,
            idle_timeout: config.read_timeout,
        };
        let thread = std::thread::Builder::new()
            .name("tsx-reactor".into())
            .spawn(move || reactor.run())?;

        Ok(ServerHandle {
            local_addr,
            shared,
            stopping,
            waker,
            reactor: Some(thread),
        })
    }
}

/// A running server: address, shared state, and the shutdown switch.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    stopping: Arc<AtomicBool>,
    waker: Arc<Waker>,
    reactor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared state (registry + metrics) — useful for in-process
    /// assertions in tests and benches.
    pub fn shared(&self) -> &ServerShared {
        &self.shared
    }

    /// Stops accepting, drains in-flight connections and joins every
    /// thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // Ring the reactor's eventfd. (The old implementation unblocked a
        // blocking accept loop with a no-op TCP connect, which counted a
        // phantom connection in `tsx_connections_total` on every
        // shutdown.)
        self.waker.wake();
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
    }

    /// Blocks until the server shuts down (another thread must call
    /// [`ServerHandle::shutdown`], or the process runs forever — the
    /// standalone binary's serving mode).
    pub fn join(mut self) {
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Process-wide sequence feeding generated request ids.
static REQUEST_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh request id for requests that arrived without `X-Request-Id`.
pub(crate) fn next_request_id() -> String {
    format!(
        "tsx-{}-{}",
        std::process::id(),
        REQUEST_SEQ.fetch_add(1, Ordering::Relaxed)
    )
}

/// The histogram/flight-recorder route label for a request — the same
/// shape classification the router dispatches on, folded to a closed set
/// so metric label cardinality stays bounded.
fn route_label(request: &http::Request) -> &'static str {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("POST", ["datasets"]) => "register",
        ("POST", ["datasets", _, "rows"]) => "append",
        ("POST", ["datasets", _, "explain"]) => "explain",
        ("POST", ["datasets", _, "compare"]) => "compare",
        ("GET", ["datasets", _, "stats"]) => "stats",
        ("DELETE", ["datasets", _]) => "remove",
        ("GET", ["metrics"]) => "metrics",
        ("GET", ["healthz"]) => "healthz",
        ("GET", ["debug", "requests"]) => "debug_requests",
        _ => "other",
    }
}

/// The tenant (dataset id) a request addresses, when its path names one.
fn tenant_label(request: &http::Request) -> Option<String> {
    let mut segments = request.path.split('/').filter(|s| !s.is_empty());
    if segments.next() != Some("datasets") {
        return None;
    }
    let id = segments.next()?;
    id.parse::<u64>().ok().map(|n| n.to_string())
}

/// Answers an unparsable message: counted as a protocol error, stamped
/// with a generated request id like every other response.
fn reject_protocol_error(shared: &ServerShared, error: ApiError, writer: &mut TcpStream) {
    shared
        .metrics
        .protocol_errors
        .fetch_add(1, Ordering::Relaxed);
    let mut response = error.into_response();
    response
        .headers
        .push(("x-request-id".into(), next_request_id()));
    shared.metrics.observe(response.status);
    let _ = response.write_to(writer, false);
}

/// Per-tenant admission check: `Some((tenant, wait))` when the request
/// names a tenant whose bucket is empty. Requests that address no tenant
/// (health, metrics, register) are never throttled.
fn throttle(shared: &ServerShared, request: &http::Request) -> Option<(String, Duration)> {
    let buckets = shared.admission.as_ref()?;
    let tenant = tenant_label(request)?;
    match buckets.try_take(&tenant) {
        Ok(()) => None,
        Err(wait) => Some((tenant, wait)),
    }
}

/// One dispatched conversation: parse, admit, dispatch, respond — then
/// hand the idle connection back to the reactor instead of holding the
/// worker. The conversation leaves this worker at client close, protocol
/// error, read timeout, server shutdown, or (the common case) after a
/// keep-alive response with no pipelined bytes pending.
///
/// Every parsed request is traced (spans recorded by the pipeline on
/// this thread), timed into the per-route/per-tenant histograms, stamped
/// with its request id (the client's `X-Request-Id` or a generated one),
/// and — when it meets the `--slow-ms` threshold — captured by the
/// flight recorder with its full span tree.
fn serve_ready(
    shared: &ServerShared,
    stream: TcpStream,
    config: &ServerConfig,
    stopping: &AtomicBool,
    returns: &Sender<TcpStream>,
    waker: &Waker,
) {
    let metrics = &shared.metrics;
    metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
    let close = || {
        metrics.open_connections.fetch_sub(1, Ordering::Relaxed);
    };
    // The reactor parks connections non-blocking; workers read blocking,
    // with the configured timeout guarding against stalled mid-request
    // senders.
    if stream.set_nonblocking(false).is_err() {
        close();
        return;
    }
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    // A stalled *reader* must not pin a worker either: bound every write
    // so a client that stops draining its socket gets disconnected once
    // the kernel buffer fills, instead of wedging the response path.
    let _ = stream.set_write_timeout(Some(config.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => {
            close();
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match http::read_request(&mut reader, config.max_body_bytes) {
            Ok(request) => request,
            Err(ReadError::ConnectionClosed) => {
                close();
                return;
            }
            Err(ReadError::TooLarge { limit, .. }) => {
                reject_protocol_error(shared, ApiError::payload_too_large(limit), &mut writer);
                close();
                return;
            }
            Err(ReadError::Malformed(m)) => {
                reject_protocol_error(
                    shared,
                    ApiError::bad_request(format!("malformed HTTP: {m}")),
                    &mut writer,
                );
                close();
                return;
            }
            Err(ReadError::Io(_)) => {
                // A transport failure or a read timeout against a stalled
                // sender — routine connection lifecycle, not client
                // garbage; no counter.
                close();
                return;
            }
        };
        let request_id = request
            .header("x-request-id")
            .map(str::to_string)
            .unwrap_or_else(next_request_id);
        let started = Instant::now();
        trace::begin();
        let mut response = match throttle(shared, &request) {
            Some((tenant, wait)) => {
                metrics.throttled.fetch_add(1, Ordering::Relaxed);
                shared.obs.tenant_throttled.add(&tenant, 1);
                ApiError::too_many_requests(
                    "throttled",
                    format!(
                        "tenant {tenant} is over its {} request/s limit",
                        shared.tenant_rps
                    ),
                )
                .into_response_retry_after(wait)
            }
            // A panic in the engine must cost one 500, not a worker thread.
            None => match catch_unwind(AssertUnwindSafe(|| router::handle(shared, &request))) {
                Ok(response) => response,
                Err(_) => {
                    metrics.panics.fetch_add(1, Ordering::Relaxed);
                    ApiError::internal("worker panicked while handling the request").into_response()
                }
            },
        };
        let trace_result = trace::finish();
        let elapsed = started.elapsed();

        metrics.observe(response.status);
        let route = route_label(&request);
        shared.obs.route_hist.record(route, elapsed);
        if let Some(tenant) = tenant_label(&request) {
            shared.obs.tenant_hist.record(&tenant, elapsed);
        }
        if shared.obs.flight.qualifies(elapsed) {
            let (spans, annotations) = match &trace_result {
                Some(t) => (t.spans_value(), t.annotations_value()),
                None => (Value::Array(Vec::new()), Value::object::<String, _>([])),
            };
            shared.obs.flight.record(FlightEntry {
                seq: 0,
                request_id: request_id.clone(),
                method: request.method.clone(),
                path: request.path.clone(),
                status: response.status,
                duration_nanos: elapsed.as_nanos().min(u64::MAX as u128) as u64,
                spans,
                annotations,
            });
        }
        tsexplain_obs::log::debug(
            "server",
            "request",
            &[
                ("request_id", Value::String(request_id.clone())),
                ("route", Value::String(route.into())),
                ("status", Value::Number(response.status as f64)),
                ("duration_ms", Value::Number(elapsed.as_secs_f64() * 1e3)),
            ],
        );
        response.headers.push(("x-request-id".into(), request_id));
        // Keep-alive is decided *after* dispatch: a shutdown that flips
        // mid-request must not advertise keep-alive on the very response
        // after which the server stops listening.
        let keep_alive = !request.wants_close() && !stopping.load(Ordering::SeqCst);
        if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
            close();
            return;
        }
        // Pipelined bytes already buffered are served here — handing the
        // raw stream back to the reactor would discard the BufReader's
        // buffer.
        if !reader.buffer().is_empty() {
            continue;
        }
        // Idle keep-alive: park the connection back in the reactor and
        // free this worker. A closed return channel means the reactor is
        // gone (shutdown); dropping the stream closes it.
        let stream = reader.into_inner();
        drop(writer);
        if returns.send(stream).is_ok() {
            waker.wake();
        } else {
            close();
        }
        return;
    }
}
