//! The event-driven connection core: one reactor thread multiplexing
//! every connection through epoll, parking idle keep-alive clients for
//! free and handing readable ones to the worker pool through a bounded
//! queue.
//!
//! This replaces the blocking accept loop that pushed every accepted
//! socket into an unbounded channel — the overload-collapse shape: with
//! all workers busy, connections queued without limit, their idle timeout
//! did not start ticking until a worker finally picked them up, and the
//! process ballooned memory while serving sockets whose clients had long
//! given up. The reactor inverts that:
//!
//! * **Admission at accept.** Beyond `--max-conns` open connections, new
//!   arrivals are answered `429 Too Many Requests` (with `retry-after`)
//!   and closed immediately — bounded connection state, never a silent
//!   backlog.
//! * **Bounded dispatch.** A readable connection is offered to the worker
//!   queue with a non-blocking `try_submit`; a full queue means the
//!   server is saturated *right now*, so the connection is shed with a
//!   429 instead of waiting unserved. Load sheds; it does not collapse.
//! * **Idle reaping from accept time.** Parked connections carry their
//!   park timestamp; the reactor sweeps anything idle past the configured
//!   timeout — which applies from the moment the connection was accepted,
//!   not from the moment a worker first touched it.
//! * **Parking is free.** A keep-alive client between requests costs one
//!   parked fd in the epoll set, not a blocked worker thread — the shape
//!   that scales to millions of mostly-idle connections.
//!
//! Workers return keep-alive connections through an (unbounded, never
//! blocking) return channel and ring the reactor's eventfd waker; the
//! reactor re-parks them. Level-triggered epoll closes the race: bytes
//! that arrived while the connection was with the worker re-fire the
//! moment it is re-registered.
//!
//! Admission is entirely upstream of the engine — it decides *whether* a
//! request is handled, never *what* the answer contains — so the
//! determinism contract (byte-identical results at any thread count) is
//! untouched by construction.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tsexplain_epoll::{Event, Poller, Waker};

use crate::error::ApiError;
use crate::pool::{SubmitError, WorkerPool};
use crate::server::{next_request_id, ServerShared};

/// The epoll token of the listening socket.
const LISTENER_TOKEN: u64 = 0;
/// The epoll token of the eventfd waker.
const WAKER_TOKEN: u64 = 1;
/// First token handed to an accepted connection.
const FIRST_CONN_TOKEN: u64 = 2;

/// What a shed response tells the client about retrying: the queue
/// drains at worker speed, so "in about a second" is honest for both the
/// connection-limit and queue-full cases.
const SHED_RETRY_AFTER: Duration = Duration::from_secs(1);

/// A connection parked in the epoll set, waiting for bytes.
struct Parked {
    stream: TcpStream,
    /// When the connection entered the parked state — accept time for
    /// new connections, response time for keep-alive re-parks. The idle
    /// timeout measures from here.
    idle_since: Instant,
}

/// Everything the reactor thread owns. Built by `Server::bind` (so epoll
/// setup errors surface from `bind`, not from a background thread) and
/// consumed by [`Reactor::run`].
pub(crate) struct Reactor {
    pub(crate) poller: Poller,
    pub(crate) waker: Arc<Waker>,
    pub(crate) listener: TcpListener,
    pub(crate) pool: WorkerPool<TcpStream>,
    pub(crate) returns: Receiver<TcpStream>,
    pub(crate) shared: Arc<ServerShared>,
    pub(crate) stopping: Arc<AtomicBool>,
    pub(crate) max_conns: usize,
    pub(crate) idle_timeout: Duration,
}

/// Builds the epoll set for a reactor: listener + waker registered under
/// their fixed tokens. Runs in `Server::bind` so failures are bind errors.
pub(crate) fn build_poller(listener: &TcpListener, waker: &Waker) -> std::io::Result<Poller> {
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    poller.add(listener.as_raw_fd(), LISTENER_TOKEN)?;
    poller.add(waker.raw_fd(), WAKER_TOKEN)?;
    Ok(poller)
}

impl Reactor {
    /// The multiplexer loop: wait for readiness, accept/dispatch/re-park,
    /// sweep idle connections; on shutdown, drain workers and close
    /// everything parked.
    pub(crate) fn run(self) {
        let mut parked: HashMap<u64, Parked> = HashMap::new();
        let mut next_token = FIRST_CONN_TOKEN;
        let mut events: Vec<Event> = Vec::new();
        // Sweep cadence: often enough that reaping is timely against the
        // configured idle timeout, bounded so an idle server stays cheap.
        let sweep =
            (self.idle_timeout / 4).clamp(Duration::from_millis(10), Duration::from_millis(500));
        loop {
            let _ = self.poller.wait(&mut events, Some(sweep));
            if self.stopping.load(Ordering::SeqCst) {
                break;
            }
            for &event in &events {
                match event.token {
                    LISTENER_TOKEN => self.accept_ready(&mut parked, &mut next_token),
                    WAKER_TOKEN => self.waker.drain(),
                    token => self.conn_ready(event, token, &mut parked),
                }
            }
            // Reparks ride on waker events but are drained every pass:
            // wakes coalesce in the eventfd, and a cheap try_recv sweep
            // beats accounting for that.
            self.repark_returned(&mut parked, &mut next_token);
            self.reap_idle(&mut parked);
            self.publish_parked(&parked);
        }
        self.drain_on_shutdown(parked);
    }

    /// Accepts everything pending on the (non-blocking) listener,
    /// admitting up to `max_conns` open connections and shedding beyond.
    fn accept_ready(&self, parked: &mut HashMap<u64, Parked>, next_token: &mut u64) {
        let metrics = &self.shared.metrics;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    metrics.connections.fetch_add(1, Ordering::Relaxed);
                    if metrics.open_connections.load(Ordering::Relaxed) >= self.max_conns as u64 {
                        self.shed(
                            stream,
                            format!(
                                "server is at its {}-connection limit; retry shortly",
                                self.max_conns
                            ),
                        );
                        continue;
                    }
                    metrics.open_connections.fetch_add(1, Ordering::Relaxed);
                    self.park(stream, parked, next_token);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                // Transient accept failures (aborted handshakes, fd
                // pressure): stop for this readiness round, retry on the
                // next event or sweep tick.
                Err(_) => break,
            }
        }
    }

    /// Registers a connection in the epoll set and parks it. On any
    /// registration failure the connection is closed and un-counted.
    fn park(&self, stream: TcpStream, parked: &mut HashMap<u64, Parked>, next_token: &mut u64) {
        let metrics = &self.shared.metrics;
        if stream.set_nonblocking(true).is_err() {
            metrics.open_connections.fetch_sub(1, Ordering::Relaxed);
            return;
        }
        let token = *next_token;
        *next_token += 1;
        if self.poller.add(stream.as_raw_fd(), token).is_err() {
            metrics.open_connections.fetch_sub(1, Ordering::Relaxed);
            return;
        }
        parked.insert(
            token,
            Parked {
                stream,
                idle_since: Instant::now(),
            },
        );
    }

    /// A parked connection became ready: unpark it and either dispatch
    /// (readable) or close (pure hangup). A full dispatch queue sheds.
    fn conn_ready(&self, event: Event, token: u64, parked: &mut HashMap<u64, Parked>) {
        let metrics = &self.shared.metrics;
        let Some(entry) = parked.remove(&token) else {
            return; // already unparked this pass (e.g. reaped)
        };
        let _ = self.poller.remove(entry.stream.as_raw_fd());
        if !event.readable {
            // Peer hung up with nothing to read: routine close.
            metrics.open_connections.fetch_sub(1, Ordering::Relaxed);
            return;
        }
        // Count the job *before* offering it: the worker that pops it
        // decrements on its own thread, and if it wins the race against a
        // post-submit increment the gauge would wrap below zero.
        metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
        match self.pool.try_submit(entry.stream) {
            Ok(()) => {}
            Err(SubmitError::QueueFull(stream)) => {
                metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                self.shed(
                    stream,
                    format!(
                        "server is saturated ({} pending requests queued); retry shortly",
                        self.pool.capacity()
                    ),
                );
                metrics.open_connections.fetch_sub(1, Ordering::Relaxed);
            }
            Err(SubmitError::Closed(_)) => {
                metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                metrics.open_connections.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// Answers an un-admitted connection with `429 Too Many Requests` +
    /// `retry-after` and closes it. The write is strictly best-effort and
    /// non-blocking: the reactor never stalls on a slow peer — a client
    /// that cannot take a ~200-byte response right now gets the close
    /// alone, which sheds just as well.
    fn shed(&self, stream: TcpStream, message: String) {
        let metrics = &self.shared.metrics;
        metrics.shed.fetch_add(1, Ordering::Relaxed);
        metrics.observe(429);
        let mut response = ApiError::too_many_requests("overloaded", message)
            .into_response_retry_after(SHED_RETRY_AFTER);
        response
            .headers
            .push(("x-request-id".into(), next_request_id()));
        let mut wire = Vec::with_capacity(256);
        let _ = response.write_to(&mut wire, false);
        // Belt and braces alongside the non-blocking mode below: even if
        // this socket were ever blocking, no shed write may stall the
        // reactor longer than the retry window it advertises.
        let _ = stream.set_write_timeout(Some(SHED_RETRY_AFTER));
        let _ = stream.set_nonblocking(true);
        let _ = (&stream).write(&wire);
        // Drain whatever request bytes already arrived before closing:
        // closing with unread data in the receive buffer resets the
        // connection, which can destroy the in-flight 429 before the
        // client reads it. Non-blocking, so this clears only what is
        // already buffered and never stalls the reactor.
        let mut scratch = [0u8; 4096];
        while matches!((&stream).read(&mut scratch), Ok(n) if n > 0) {}
        // Dropping the stream closes it.
    }

    /// Re-parks connections workers handed back after a keep-alive
    /// response. Their idle clock restarts now.
    fn repark_returned(&self, parked: &mut HashMap<u64, Parked>, next_token: &mut u64) {
        while let Ok(stream) = self.returns.try_recv() {
            self.park(stream, parked, next_token);
        }
    }

    /// Closes parked connections idle past the timeout. Because parking
    /// starts at accept, the cap binds from accept time — a connection
    /// can no longer wait out an unbounded queue before its clock starts.
    fn reap_idle(&self, parked: &mut HashMap<u64, Parked>) {
        let metrics = &self.shared.metrics;
        let now = Instant::now();
        let poller = &self.poller;
        let timeout = self.idle_timeout;
        parked.retain(|_, entry| {
            if now.duration_since(entry.idle_since) <= timeout {
                return true;
            }
            let _ = poller.remove(entry.stream.as_raw_fd());
            metrics.idle_reaped.fetch_add(1, Ordering::Relaxed);
            metrics.open_connections.fetch_sub(1, Ordering::Relaxed);
            false
        });
    }

    /// Publishes the parked-connection gauge (single-writer: only the
    /// reactor thread stores it).
    fn publish_parked(&self, parked: &HashMap<u64, Parked>) {
        self.shared
            .metrics
            .parked_connections
            .store(parked.len() as u64, Ordering::Relaxed);
    }

    /// Shutdown: stop accepting, close every parked connection, drain the
    /// worker pool (in-flight requests finish and answer with
    /// `connection: close`), then drop any conversations returned during
    /// the drain.
    fn drain_on_shutdown(self, mut parked: HashMap<u64, Parked>) {
        let metrics = &self.shared.metrics;
        let _ = self.poller.remove(self.listener.as_raw_fd());
        drop(self.listener);
        for (_, entry) in parked.drain() {
            let _ = self.poller.remove(entry.stream.as_raw_fd());
            metrics.open_connections.fetch_sub(1, Ordering::Relaxed);
        }
        metrics.parked_connections.store(0, Ordering::Relaxed);
        // Joining the pool drains queued jobs too: their requests are
        // parsed and answered (with `connection: close`, since the
        // stopping flag is already up) rather than dropped on the floor.
        self.pool.join();
        while let Ok(stream) = self.returns.try_recv() {
            drop(stream);
            metrics.open_connections.fetch_sub(1, Ordering::Relaxed);
        }
    }
}
