//! Admission control: per-tenant token-bucket rate limits.
//!
//! The other half of admission — the bounded pending-request queue with
//! shed-on-overload — lives in the reactor ([`crate::reactor`]), where
//! connections are admitted before their requests are ever parsed. The
//! token buckets here run *after* parsing, in the worker, because the
//! tenant a request addresses is only known from its path; they are keyed
//! exactly the way the per-tenant latency histograms
//! (`tsx_tenant_request_duration_seconds`) label, so a throttle decision
//! and the latency it protects read off the same axis.
//!
//! Token buckets are the classic shape: each tenant holds up to `burst`
//! tokens, refilled continuously at `rate` per second; a request takes
//! one token or is rejected with the time until the next token — which
//! becomes the 429's `retry-after`. Timekeeping is wall-clock
//! (`Instant`), which is fine here by construction: admission runs
//! upstream of the engine, so it can never influence *what* an answer
//! contains, only *whether* one is computed now.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Above this many tracked tenants, the bucket map sheds entries that
/// are fully refilled (idle tenants lose nothing by being forgotten —
/// a fresh bucket starts full). Guards against unbounded growth from
/// requests addressing made-up dataset ids.
const PRUNE_THRESHOLD: usize = 8192;

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    refilled: Instant,
}

/// Per-tenant token buckets with one shared rate and burst.
#[derive(Debug)]
pub struct TokenBuckets {
    /// Tokens per second each tenant accrues.
    rate: f64,
    /// The bucket capacity (how much idle credit a tenant can bank).
    burst: f64,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl TokenBuckets {
    /// Buckets refilling at `rate` requests/second per tenant, with one
    /// second of burst (at least one whole request).
    pub fn new(rate: f64) -> Self {
        let rate = rate.max(f64::MIN_POSITIVE);
        TokenBuckets {
            rate,
            burst: rate.max(1.0),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Takes one token from `tenant`'s bucket, or reports how long until
    /// the next token accrues (the `retry-after` for a 429).
    pub fn try_take(&self, tenant: &str) -> Result<(), Duration> {
        let now = Instant::now();
        let mut map = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        if map.len() > PRUNE_THRESHOLD && !map.contains_key(tenant) {
            let burst = self.burst;
            let rate = self.rate;
            map.retain(|_, b| {
                let refilled =
                    (b.tokens + now.duration_since(b.refilled).as_secs_f64() * rate).min(burst);
                refilled < burst
            });
        }
        let bucket = map.entry(tenant.to_string()).or_insert(Bucket {
            tokens: self.burst,
            refilled: now,
        });
        bucket.tokens = (bucket.tokens
            + now.duration_since(bucket.refilled).as_secs_f64() * self.rate)
            .min(self.burst);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            Err(Duration::from_secs_f64((1.0 - bucket.tokens) / self.rate))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_throttle_then_refill() {
        let buckets = TokenBuckets::new(2.0);
        // Burst capacity = max(rate, 1) = 2 immediate takes.
        assert!(buckets.try_take("7").is_ok());
        assert!(buckets.try_take("7").is_ok());
        let wait = buckets.try_take("7").expect_err("bucket must be empty");
        // At 2 rps the next token is at most half a second away.
        assert!(wait <= Duration::from_millis(501), "{wait:?}");
        assert!(wait > Duration::ZERO);
        // Refill is continuous: after the reported wait, a take succeeds.
        std::thread::sleep(wait + Duration::from_millis(20));
        assert!(buckets.try_take("7").is_ok());
    }

    #[test]
    fn tenants_do_not_share_buckets() {
        let buckets = TokenBuckets::new(1.0);
        assert!(buckets.try_take("1").is_ok());
        assert!(buckets.try_take("1").is_err(), "tenant 1 spent its burst");
        assert!(buckets.try_take("2").is_ok(), "tenant 2 is unaffected");
    }

    #[test]
    fn sub_unit_rates_still_admit_a_first_request() {
        let buckets = TokenBuckets::new(0.5);
        // burst = max(0.5, 1.0): one request passes, then ~2s of waiting.
        assert!(buckets.try_take("9").is_ok());
        let wait = buckets.try_take("9").expect_err("must throttle");
        assert!(wait > Duration::from_secs(1), "{wait:?}");
        assert!(wait <= Duration::from_secs(2), "{wait:?}");
    }

    #[test]
    fn idle_tenants_are_pruned_beyond_the_threshold() {
        let buckets = TokenBuckets::new(1000.0);
        for i in 0..(PRUNE_THRESHOLD + 10) {
            let _ = buckets.try_take(&i.to_string());
        }
        // Entries taken long enough ago are fully refilled; inserting one
        // more tenant past the threshold prunes them.
        std::thread::sleep(Duration::from_millis(5));
        assert!(buckets.try_take("fresh-tenant").is_ok());
        let len = buckets
            .buckets
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len();
        assert!(
            len <= PRUNE_THRESHOLD + 2,
            "map must have been pruned, len={len}"
        );
    }
}
