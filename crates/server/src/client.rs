//! A tiny blocking HTTP/JSON client speaking the tsx-server wire
//! protocol — the same types the server serializes, so a response read
//! here deserializes into exactly what an in-process session returns.
//!
//! One client owns one keep-alive connection (re-established on demand),
//! so a loop of requests pays one TCP handshake.

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use serde::{Deserialize, Serialize, Value};
use tsexplain::{AggQuery, Datum, ExplainRequest, ExplainResult, Schema};

use crate::error::ApiError;
use crate::http::{read_response, ReadError, Response};
use crate::wire::{
    encode_rows, AppendAck, AppendRowsBody, CompareBody, CompareResponse, DatasetCreated,
    RegisterDataset,
};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, write, read, or a malformed
    /// response).
    Transport(String),
    /// The server answered with an error body.
    Api(ApiError),
    /// The server answered 2xx but the body did not decode as expected.
    Decode(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(m) => write!(f, "transport error: {m}"),
            ClientError::Api(e) => {
                write!(f, "server error {} ({}): {}", e.status, e.kind, e.message)
            }
            ClientError::Decode(m) => write!(f, "undecodable response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// How a [`Client`] retries failed calls: capped exponential backoff
/// with deterministic jitter, honoring the server's `retry-after` hint.
///
/// Only failures that provably left no request executing are retried —
/// a refused/failed *connect* (nothing was ever sent), a clean close of
/// a reused keep-alive connection before any response byte (the server
/// idle-reaped it unread), and `429 Too Many Requests` (admission
/// control rejects *before* the engine runs). A half-written exchange is
/// never resent: blindly replaying a non-idempotent POST such as an
/// append could ingest rows twice.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Retry attempts after the first try. The default 0 keeps the
    /// historical fail-fast behavior.
    pub max_retries: u32,
    /// The first backoff; each further attempt doubles it.
    pub base: Duration,
    /// The ceiling for any single backoff (also caps a server
    /// `retry-after` hint).
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 0,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `max_retries` retries with the default backoff.
    pub fn retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            ..RetryPolicy::default()
        }
    }

    /// The backoff before retry `attempt` (1-based). A server
    /// `retry-after` hint wins (capped); otherwise capped exponential
    /// with deterministic jitter in the upper half of the window, so a
    /// fleet of clients salted differently doesn't retry in lockstep.
    fn backoff(&self, attempt: u32, hint: Option<Duration>, salt: u64) -> Duration {
        if let Some(hint) = hint {
            return hint.min(self.cap);
        }
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16))
            .min(self.cap);
        let half = exp / 2;
        let jitter_range = half.as_millis() as u64 + 1;
        let jitter = splitmix(salt ^ u64::from(attempt)) % jitter_range;
        half + Duration::from_millis(jitter)
    }
}

/// SplitMix64: a tiny deterministic mixer for retry jitter — no RNG
/// state, no wall clock, same backoff schedule on every run.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A blocking wire-protocol client bound to one server address.
pub struct Client {
    addr: SocketAddr,
    connection: Option<TcpStream>,
    read_timeout: Duration,
    retry: RetryPolicy,
}

impl Client {
    /// A client for the server at `addr` (no connection made yet).
    pub fn new(addr: SocketAddr) -> Self {
        Client {
            addr,
            connection: None,
            read_timeout: Duration::from_secs(60),
            retry: RetryPolicy::default(),
        }
    }

    /// Replaces the retry policy (default: no retries).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Registers a dataset; returns its id.
    pub fn register(
        &mut self,
        schema: &Schema,
        query: &AggQuery,
        rows: &[Vec<Datum>],
    ) -> Result<DatasetCreated, ClientError> {
        let body = RegisterDataset {
            schema: schema.clone(),
            query: query.clone(),
            rows: encode_rows(rows),
        };
        self.call("POST", "/datasets", Some(&body.serialize()))
            .and_then(decode)
    }

    /// Appends rows to a dataset.
    pub fn append_rows(
        &mut self,
        dataset_id: u64,
        rows: &[Vec<Datum>],
    ) -> Result<AppendAck, ClientError> {
        let body = AppendRowsBody {
            rows: encode_rows(rows),
        };
        self.call(
            "POST",
            &format!("/datasets/{dataset_id}/rows"),
            Some(&body.serialize()),
        )
        .and_then(decode)
    }

    /// Runs one explain request, decoded into the engine's result type.
    pub fn explain(
        &mut self,
        dataset_id: u64,
        request: &ExplainRequest,
    ) -> Result<ExplainResult, ClientError> {
        self.explain_value(dataset_id, request).and_then(|v| {
            ExplainResult::deserialize(&v).map_err(|e| ClientError::Decode(e.to_string()))
        })
    }

    /// Runs one explain request, returning the raw JSON document — what
    /// byte-level comparisons against in-process results use.
    pub fn explain_value(
        &mut self,
        dataset_id: u64,
        request: &ExplainRequest,
    ) -> Result<Value, ClientError> {
        self.call(
            "POST",
            &format!("/datasets/{dataset_id}/explain"),
            Some(&request.serialize()),
        )
    }

    /// Fans one request across every segmentation strategy
    /// (`POST /datasets/{id}/compare`), decoded into the typed response.
    pub fn compare(
        &mut self,
        dataset_id: u64,
        request: &ExplainRequest,
        window: Option<usize>,
    ) -> Result<CompareResponse, ClientError> {
        self.compare_value(dataset_id, request, window)
            .and_then(decode)
    }

    /// Like [`Client::compare`], returning the raw JSON document.
    pub fn compare_value(
        &mut self,
        dataset_id: u64,
        request: &ExplainRequest,
        window: Option<usize>,
    ) -> Result<Value, ClientError> {
        let body = CompareBody {
            request: request.clone(),
            window,
        };
        self.call(
            "POST",
            &format!("/datasets/{dataset_id}/compare"),
            Some(&body.serialize()),
        )
    }

    /// One tenant's stats document.
    pub fn stats(&mut self, dataset_id: u64) -> Result<Value, ClientError> {
        self.call("GET", &format!("/datasets/{dataset_id}/stats"), None)
    }

    /// The server's metrics document.
    pub fn metrics(&mut self) -> Result<Value, ClientError> {
        self.call("GET", "/metrics", None)
    }

    /// The Prometheus text exposition (`/metrics?format=prometheus`) —
    /// plain text, not JSON.
    pub fn metrics_prometheus(&mut self) -> Result<String, ClientError> {
        let response = self
            .raw("GET", "/metrics?format=prometheus", None, &[])
            .map_err(|e| ClientError::Transport(e.to_string()))?;
        if !(200..300).contains(&response.status) {
            return Err(ClientError::Transport(format!(
                "status {} scraping the exposition",
                response.status
            )));
        }
        String::from_utf8(response.body).map_err(|_| ClientError::Decode("non-UTF-8 body".into()))
    }

    /// The slow-request flight recorder (`/debug/requests`).
    pub fn debug_requests(&mut self) -> Result<Value, ClientError> {
        self.call("GET", "/debug/requests", None)
    }

    /// One request with full control: extra headers in, the raw
    /// [`Response`] (status, headers, body) out, no retry. What tests use
    /// to send `X-Request-Id` and inspect its echo.
    pub fn raw(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        headers: &[(&str, &str)],
    ) -> Result<Response, ReadError> {
        let result = self.try_call_with(method, path, body, headers);
        if result.is_err() {
            self.connection = None;
        }
        result
    }

    /// Removes a dataset.
    pub fn remove(&mut self, dataset_id: u64) -> Result<(), ClientError> {
        self.call("DELETE", &format!("/datasets/{dataset_id}"), None)
            .map(|_| ())
    }

    /// Sends one request, reusing (or re-establishing) the connection, and
    /// returns the decoded 2xx body. Error statuses become
    /// [`ClientError::Api`].
    ///
    /// Retries follow the client's [`RetryPolicy`] — see its docs for
    /// exactly which failures are safe to resend. Independently of the
    /// policy, a *clean close of a reused connection* (the server's idle
    /// timeout reaping a pooled connection before the request was read)
    /// is resent once for free, as it always was.
    fn call(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Value>,
    ) -> Result<Value, ClientError> {
        let encoded = body.map(|v| serde_json::to_string(v).expect("request bodies encode"));
        let salt = splitmix(path.len() as u64 ^ (encoded.as_deref().unwrap_or("").len() as u64));
        let mut attempt: u32 = 0;
        let mut clean_close_retried = false;
        loop {
            let reused = self.connection.is_some();
            if let Err(e) = self.ensure_connected() {
                // Nothing was sent — a connect failure is always safe to
                // retry.
                if attempt < self.retry.max_retries {
                    attempt += 1;
                    std::thread::sleep(self.retry.backoff(attempt, None, salt));
                    continue;
                }
                return Err(ClientError::Transport(e.to_string()));
            }
            match self.try_call(method, path, encoded.as_deref()) {
                Ok(response) => {
                    // 429 means admission control bounced the request
                    // before the engine saw it — safe to retry even for
                    // non-idempotent calls, pacing by the server's own
                    // `retry-after` hint.
                    if response.status == 429 && attempt < self.retry.max_retries {
                        let hint = retry_after_hint(&response);
                        // Shed connections are closed server-side; don't
                        // pool a dead socket across the backoff.
                        self.connection = None;
                        attempt += 1;
                        std::thread::sleep(self.retry.backoff(attempt, hint, salt));
                        continue;
                    }
                    return finish(response);
                }
                Err(ReadError::ConnectionClosed) if reused && !clean_close_retried => {
                    // The server idle-reaped the pooled connection before
                    // reading the request; resend once without spending
                    // retry budget.
                    clean_close_retried = true;
                    self.connection = None;
                }
                Err(e) => {
                    // The connection's state is unknown; drop it. A
                    // half-written exchange is never resent.
                    self.connection = None;
                    return Err(ClientError::Transport(e.to_string()));
                }
            }
        }
    }

    /// Establishes the pooled connection if none is live. Separated from
    /// the send path so the retry loop can tell "connect failed, nothing
    /// sent" (safe to retry) apart from a mid-exchange failure (not).
    fn ensure_connected(&mut self) -> std::io::Result<()> {
        if self.connection.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(self.read_timeout))?;
            stream.set_nodelay(true)?;
            self.connection = Some(stream);
        }
        Ok(())
    }

    fn try_call(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Response, ReadError> {
        self.try_call_with(method, path, body, &[])
    }

    fn try_call_with(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        headers: &[(&str, &str)],
    ) -> Result<Response, ReadError> {
        use std::io::Write;
        self.ensure_connected()?;
        let stream = self.connection.as_mut().expect("just ensured");
        let body = body.unwrap_or("");
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nhost: tsx\r\ncontent-type: application/json\r\ncontent-length: {}\r\n",
            body.len()
        );
        for (name, value) in headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        let mut reader = BufReader::new(stream.try_clone()?);
        read_response(&mut reader)
    }
}

/// The `retry-after` header of a 429, as a duration (whole seconds on
/// the wire).
fn retry_after_hint(response: &Response) -> Option<Duration> {
    response
        .headers
        .iter()
        .find(|(name, _)| name.eq_ignore_ascii_case("retry-after"))
        .and_then(|(_, value)| value.trim().parse::<u64>().ok())
        .map(Duration::from_secs)
}

fn finish(response: Response) -> Result<Value, ClientError> {
    let text = String::from_utf8(response.body)
        .map_err(|_| ClientError::Decode("non-UTF-8 body".into()))?;
    let value: Value =
        serde_json::from_str(&text).map_err(|e| ClientError::Decode(e.to_string()))?;
    if (200..300).contains(&response.status) {
        Ok(value)
    } else {
        match ApiError::deserialize(&value) {
            Ok(e) => Err(ClientError::Api(e)),
            Err(_) => Err(ClientError::Decode(format!(
                "status {} with unexpected body {text}",
                response.status
            ))),
        }
    }
}

fn decode<T: Deserialize>(value: Value) -> Result<T, ClientError> {
    T::deserialize(&value).map_err(|e| ClientError::Decode(e.to_string()))
}
