//! A small, dependency-free HTTP/1.1 codec over blocking streams.
//!
//! Exactly the subset the tsx-server wire protocol needs: request/response
//! framing with `Content-Length` bodies (strict: conflicting duplicates
//! and non-digit values are malformed), case-insensitive headers,
//! version-aware keep-alive (HTTP/1.1 persists by default; HTTP/1.0
//! closes unless the client asks, honouring `Connection` as a token
//! list) and hard limits on header and body sizes so a misbehaving
//! client cannot balloon a worker. No
//! chunked transfer, no TLS, no pipelining — requests on one connection
//! are handled strictly in order.

use std::io::{self, BufRead, Write};

/// Upper bound on the request line + headers block.
pub const MAX_HEAD_BYTES: usize = 64 * 1024;

/// Default upper bound on request bodies (servers may configure less).
pub const DEFAULT_MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// Why reading a message from a connection stopped.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection cleanly between messages — the
    /// normal end of a keep-alive conversation, not an error to report.
    ConnectionClosed,
    /// The bytes on the wire are not the HTTP subset this codec speaks.
    Malformed(String),
    /// The head or body exceeded its size limit.
    TooLarge {
        /// What overflowed: `"head"` or `"body"`.
        what: &'static str,
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The underlying transport failed mid-message.
    Io(io::Error),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::ConnectionClosed => write!(f, "connection closed"),
            ReadError::Malformed(m) => write!(f, "malformed message: {m}"),
            ReadError::TooLarge { what, limit } => {
                write!(f, "{what} exceeds the {limit}-byte limit")
            }
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// The HTTP minor version of a parsed message — it decides the
/// keep-alive *default* when no `Connection` header says otherwise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Version {
    /// `HTTP/1.0`: close by default, keep-alive only on request.
    Http10,
    /// `HTTP/1.1` (and any later 1.x): keep-alive by default.
    Http11,
}

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// The path component, query string stripped.
    pub path: String,
    /// The raw query string (after `?`), empty when absent.
    pub query: String,
    /// The protocol version on the request line.
    pub version: Version,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The raw body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header named `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection must drop after this exchange.
    ///
    /// `Connection` is a comma-separated token list, so `keep-alive,
    /// close` closes (any `close` token wins). Without a decisive token
    /// the protocol version's default applies: HTTP/1.1 persists,
    /// HTTP/1.0 closes — a 1.0 client that never asked for keep-alive is
    /// waiting for EOF to delimit the body, and holding the connection
    /// open would hang it.
    pub fn wants_close(&self) -> bool {
        let mut keep_alive_token = false;
        if let Some(value) = self.header("connection") {
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    return true;
                }
                if token.eq_ignore_ascii_case("keep-alive") {
                    keep_alive_token = true;
                }
            }
        }
        match self.version {
            Version::Http11 => false,
            Version::Http10 => !keep_alive_token,
        }
    }

    /// The value of query parameter `name`, if present (`a=1&b=2` form;
    /// no percent-decoding — tsx-server's parameters are plain tokens).
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == name).then_some(v)
        })
    }
}

/// Reads one request from a buffered connection.
pub fn read_request<R: BufRead>(reader: &mut R, max_body: usize) -> Result<Request, ReadError> {
    let mut lines = read_head(reader)?;
    let request_line = lines.remove(0);
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ReadError::Malformed(format!(
            "bad request line {request_line:?}"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!("bad version {version:?}")));
    }
    let version = if version == "HTTP/1.0" {
        Version::Http10
    } else {
        Version::Http11
    };
    let headers = parse_headers(&lines)?;
    let content_length = content_length(&headers)?;
    if content_length > max_body {
        // Drain nothing: the caller answers 413 and closes the connection.
        return Err(ReadError::TooLarge {
            what: "body",
            limit: max_body,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    Ok(Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        version,
        headers,
        body,
    })
}

/// One HTTP response about to be written (or just parsed by a client).
#[derive(Debug)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// The `content-type` written with the body (JSON for every
    /// tsx-server endpoint except the Prometheus exposition). On a
    /// client-parsed response this is the *received* `content-type`
    /// header, whatever it said — not an assumption.
    pub content_type: String,
    /// Extra headers (lower-cased names), e.g. `x-request-id`. On a
    /// client-parsed response this holds every received header.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response from already-encoded text.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json".into(),
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response (the Prometheus exposition format).
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4".into(),
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// The first header named `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Writes the response, flagging whether the connection stays open.
    pub fn write_to<W: Write>(&self, writer: &mut W, keep_alive: bool) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        writer.write_all(head.as_bytes())?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// Reads one response from a buffered connection (the client half).
pub fn read_response<R: BufRead>(reader: &mut R) -> Result<Response, ReadError> {
    let mut lines = read_head(reader)?;
    let status_line = lines.remove(0);
    let mut parts = status_line.split_whitespace();
    let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
        return Err(ReadError::Malformed(format!(
            "bad status line {status_line:?}"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!("bad version {version:?}")));
    }
    let status: u16 = code
        .parse()
        .map_err(|_| ReadError::Malformed(format!("bad status code {code:?}")))?;
    let headers = parse_headers(&lines)?;
    let mut body = vec![0u8; content_length(&headers)?];
    reader.read_exact(&mut body)?;
    // The parsed response reports what the server *sent* — hardcoding
    // JSON here would mislabel the Prometheus text exposition.
    let content_type = headers
        .iter()
        .find(|(n, _)| n == "content-type")
        .map(|(_, v)| v.clone())
        .unwrap_or_default();
    Ok(Response {
        status,
        content_type,
        headers,
        body,
    })
}

/// Reads the head block (request/status line + headers) as trimmed lines.
fn read_head<R: BufRead>(reader: &mut R) -> Result<Vec<String>, ReadError> {
    use std::io::Read;
    let mut lines = Vec::new();
    let mut total = 0usize;
    loop {
        let mut raw = Vec::new();
        // Cap the read *inside* the line: a peer streaming newline-free
        // bytes must hit the head limit, not balloon this buffer.
        let n = reader
            .by_ref()
            .take((MAX_HEAD_BYTES + 1 - total) as u64)
            .read_until(b'\n', &mut raw)?;
        if n == 0 {
            return if lines.is_empty() && total == 0 {
                Err(ReadError::ConnectionClosed)
            } else {
                Err(ReadError::Malformed("truncated head".into()))
            };
        }
        total += n;
        if total > MAX_HEAD_BYTES {
            return Err(ReadError::TooLarge {
                what: "head",
                limit: MAX_HEAD_BYTES,
            });
        }
        let line =
            String::from_utf8(raw).map_err(|_| ReadError::Malformed("non-UTF-8 head".into()))?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            if lines.is_empty() {
                // Tolerate stray blank lines before the request line.
                continue;
            }
            return Ok(lines);
        }
        lines.push(line.to_string());
    }
}

fn parse_headers(lines: &[String]) -> Result<Vec<(String, String)>, ReadError> {
    lines
        .iter()
        .map(|line| {
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| ReadError::Malformed(format!("bad header {line:?}")))?;
            Ok((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect()
}

/// The body length the headers declare. Strict by design — this is the
/// request-smuggling surface: conflicting duplicate `Content-Length`
/// headers are rejected outright (two values means two different framings
/// of the same byte stream), and the value must be plain ASCII digits —
/// `+5` parses fine as a Rust `usize` but is not a valid HTTP length, and
/// a front-end that reads it differently would de-sync from us.
fn content_length(headers: &[(String, String)]) -> Result<usize, ReadError> {
    let mut declared: Option<usize> = None;
    for (_, v) in headers.iter().filter(|(n, _)| n == "content-length") {
        if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ReadError::Malformed(format!("bad content-length {v:?}")));
        }
        let parsed: usize = v
            .parse()
            .map_err(|_| ReadError::Malformed(format!("bad content-length {v:?}")))?;
        match declared {
            None => declared = Some(parsed),
            Some(prev) if prev == parsed => {}
            Some(prev) => {
                return Err(ReadError::Malformed(format!(
                    "conflicting content-length headers ({prev} vs {parsed})"
                )))
            }
        }
    }
    Ok(declared.unwrap_or(0))
}

/// The canonical reason phrase for the status codes tsx-server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(text.as_bytes()), DEFAULT_MAX_BODY_BYTES)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            "POST /datasets/7/explain HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/datasets/7/explain");
        assert_eq!(req.body, b"{\"a\"");
        assert_eq!(req.header("host"), Some("x"));
        assert!(!req.wants_close());
    }

    #[test]
    fn strips_query_strings_and_honours_connection_close() {
        let req = parse("GET /metrics?verbose=1 HTTP/1.1\r\nConnection: Close\r\n\r\n").unwrap();
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.query, "verbose=1");
        assert!(req.wants_close());
    }

    #[test]
    fn query_params_are_addressable_by_name() {
        let req = parse("GET /metrics?format=prometheus&x=1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.query_param("format"), Some("prometheus"));
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.query_param("missing"), None);
        let bare = parse("GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(bare.query, "");
        assert_eq!(bare.query_param("format"), None);
    }

    #[test]
    fn http10_defaults_to_close_and_keep_alive_must_be_asked_for() {
        // No Connection header: a 1.0 client waits for EOF — close.
        let req = parse("GET /healthz HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(req.version, Version::Http10);
        assert!(req.wants_close(), "HTTP/1.0 without Connection must close");
        // Explicit keep-alive: honour it.
        let req = parse("GET /healthz HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(!req.wants_close());
        // HTTP/1.1 stays keep-alive by default.
        let req = parse("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.version, Version::Http11);
        assert!(!req.wants_close());
    }

    #[test]
    fn connection_header_is_a_token_list_and_close_wins() {
        // `keep-alive, close` must not slip through as keep-alive.
        let req = parse("GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n").unwrap();
        assert!(req.wants_close());
        let req = parse("GET / HTTP/1.1\r\nConnection: Close , TE\r\n\r\n").unwrap();
        assert!(req.wants_close());
        // Unrelated tokens alone fall back to the version default.
        let req = parse("GET / HTTP/1.1\r\nConnection: upgrade\r\n\r\n").unwrap();
        assert!(!req.wants_close());
        let req = parse("GET / HTTP/1.0\r\nConnection: upgrade\r\n\r\n").unwrap();
        assert!(req.wants_close());
        let req = parse("GET / HTTP/1.0\r\nConnection: TE, keep-alive\r\n\r\n").unwrap();
        assert!(!req.wants_close());
    }

    #[test]
    fn conflicting_duplicate_content_lengths_are_malformed() {
        // Two different framings of one byte stream — the smuggling shape.
        let e = parse("POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 10\r\n\r\nbody")
            .unwrap_err();
        assert!(matches!(e, ReadError::Malformed(_)), "{e}");
        // Identical duplicates agree on the framing and still parse.
        let req =
            parse("POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody").unwrap();
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn content_length_must_be_plain_digits() {
        // `+4` parses as a Rust usize but is not a valid HTTP length.
        for bad in ["+4", "-4", " 4x", "4 4", "0x10", ""] {
            let e = parse(&format!(
                "POST / HTTP/1.1\r\nContent-Length:{bad}\r\n\r\nbody"
            ))
            .unwrap_err();
            assert!(
                matches!(e, ReadError::Malformed(_)),
                "{bad:?} must be rejected"
            );
        }
        let req = parse("POST / HTTP/1.1\r\nContent-Length: 004\r\n\r\nbody").unwrap();
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn a_stalled_reader_is_disconnected_by_the_write_timeout() {
        // The worker write path sets `set_write_timeout` on every accepted
        // socket: a client that requests a response and then stops
        // draining its socket must cost the server one bounded write
        // error, not a wedged worker. Exercised here at the write-path
        // level: once the kernel buffers fill, `write_to` must return Err
        // instead of blocking forever.
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::net::TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side
            .set_write_timeout(Some(std::time::Duration::from_millis(50)))
            .unwrap();
        // Big enough to overrun both peers' socket buffers while the
        // client (deliberately) never reads a byte.
        let response = Response::json(200, "x".repeat(16 * 1024 * 1024));
        let started = std::time::Instant::now();
        let err = response
            .write_to(&mut (&server_side), false)
            .expect_err("write against a stalled reader must time out");
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "unexpected error kind: {err:?}"
        );
        assert!(
            started.elapsed() < std::time::Duration::from_secs(10),
            "the stalled write must fail fast, not hang"
        );
        drop(client);
    }

    #[test]
    fn parsed_responses_report_the_received_content_type() {
        // A text/plain body (the Prometheus exposition) must not come
        // back labelled application/json.
        let mut wire = Vec::new();
        Response::text(200, "tsx_requests_total 1\n".into())
            .write_to(&mut wire, true)
            .unwrap();
        let back = read_response(&mut BufReader::new(wire.as_slice())).unwrap();
        assert_eq!(back.content_type, "text/plain; version=0.0.4");
        let mut wire = Vec::new();
        Response::json(200, "{}".into())
            .write_to(&mut wire, true)
            .unwrap();
        let back = read_response(&mut BufReader::new(wire.as_slice())).unwrap();
        assert_eq!(back.content_type, "application/json");
    }

    #[test]
    fn clean_eof_is_connection_closed() {
        assert!(matches!(parse(""), Err(ReadError::ConnectionClosed)));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_bodies_are_rejected_upfront() {
        let e = read_request(
            &mut BufReader::new("POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n".as_bytes()),
            10,
        )
        .unwrap_err();
        assert!(matches!(e, ReadError::TooLarge { what: "body", .. }));
    }

    #[test]
    fn newline_free_floods_hit_the_head_limit_not_memory() {
        // A head with no \n at all must be cut off at MAX_HEAD_BYTES, not
        // buffered indefinitely.
        let flood = "x".repeat(MAX_HEAD_BYTES * 4);
        let e = parse(&flood).unwrap_err();
        assert!(matches!(e, ReadError::TooLarge { what: "head", .. }), "{e}");
    }

    #[test]
    fn responses_roundtrip_through_the_codec() {
        let mut wire = Vec::new();
        Response::json(201, "{\"ok\":true}".into())
            .write_to(&mut wire, true)
            .unwrap();
        let back = read_response(&mut BufReader::new(wire.as_slice())).unwrap();
        assert_eq!(back.status, 201);
        assert_eq!(back.body, b"{\"ok\":true}");
        assert_eq!(back.header("content-type"), Some("application/json"));
    }

    #[test]
    fn extra_response_headers_survive_the_roundtrip() {
        let mut response = Response::text(200, "tsx_requests_total 1\n".into());
        response
            .headers
            .push(("x-request-id".into(), "tsx-42".into()));
        let mut wire = Vec::new();
        response.write_to(&mut wire, false).unwrap();
        let back = read_response(&mut BufReader::new(wire.as_slice())).unwrap();
        assert_eq!(back.header("x-request-id"), Some("tsx-42"));
        assert_eq!(
            back.header("content-type"),
            Some("text/plain; version=0.0.4")
        );
        assert_eq!(back.body, b"tsx_requests_total 1\n");
    }

    #[test]
    fn garbage_is_malformed_not_a_panic() {
        assert!(matches!(
            parse("NOT-HTTP\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / SPDY/3\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }
}
