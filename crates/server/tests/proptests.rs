//! Robustness properties of the HTTP codec and the serving loop:
//! arbitrary malformed request bytes — truncated heads, oversized bodies,
//! lying `Content-Length`s, unsupported chunked framing, binary soup —
//! must never panic a worker. Every connection ends in a 4xx/413 response
//! or a clean close, and the server keeps answering afterwards.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use proptest::prelude::*;
use tsexplain_server::http::{self, ReadError};
use tsexplain_server::{Server, ServerConfig};

/// A corpus of deliberately malformed request shapes, indexed by `shape`;
/// `bytes` seeds the random parts.
fn malformed_request(shape: u8, bytes: &[u8]) -> Vec<u8> {
    let soup = String::from_utf8_lossy(bytes).into_owned();
    match shape % 10 {
        // Raw binary soup, no HTTP at all.
        0 => bytes.to_vec(),
        // Truncated head: a request line with no terminating blank line.
        1 => format!("POST /datasets HTTP/1.1\r\nContent-Length: {}", bytes.len()).into_bytes(),
        // Body shorter than its Content-Length claims (truncated body).
        2 => format!("POST /datasets/1/explain HTTP/1.1\r\nContent-Length: 100000\r\n\r\n{soup}")
            .into_bytes(),
        // Oversized body: a claim far past the server's limit.
        3 => b"POST /datasets HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n".to_vec(),
        // Chunked transfer, which this codec deliberately does not speak:
        // the chunk framing bytes arrive where the next head is expected.
        4 => format!(
            "POST /datasets HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\n{soup}\r\n0\r\n\r\n"
        )
        .into_bytes(),
        // Non-numeric / negative Content-Length.
        5 => format!("POST / HTTP/1.1\r\nContent-Length: {soup}x\r\n\r\n").into_bytes(),
        // Headers without colons (colons stripped from the soup so the
        // line cannot accidentally become a valid header).
        6 => format!(
            "GET /metrics HTTP/1.1\r\nno-colon-here {}\r\n\r\n",
            soup.replace([':', '\r', '\n'], "")
        )
        .into_bytes(),
        // Wrong protocol version.
        7 => format!("GET /{soup} SPDY/3\r\n\r\n").into_bytes(),
        // A head flood: newline-free bytes well past the head limit.
        8 => vec![b'x'; http::MAX_HEAD_BYTES + 4096],
        // Valid framing, garbage JSON body — must be a 400, not a panic.
        _ => format!(
            "POST /datasets HTTP/1.1\r\nContent-Length: {}\r\n\r\n{soup}",
            soup.len()
        )
        .into_bytes(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The codec itself: any byte sequence parses or errors, never panics,
    /// and a reported `TooLarge` never exceeds its configured limit.
    #[test]
    fn read_request_never_panics_on_arbitrary_bytes(
        shape in 0u8..10,
        bytes in proptest::collection::vec(0u8..=255, 0..200),
    ) {
        let wire = malformed_request(shape, &bytes);
        let mut reader = BufReader::new(wire.as_slice());
        match http::read_request(&mut reader, 4096) {
            Ok(request) => {
                // Anything that parses obeys the configured limits.
                prop_assert!(request.body.len() <= 4096);
            }
            Err(
                ReadError::ConnectionClosed
                | ReadError::Malformed(_)
                | ReadError::TooLarge { .. }
                | ReadError::Io(_),
            ) => {}
        }
    }
}

/// One live conversation: write `wire`, read whatever comes back. Returns
/// the status codes of any well-formed responses received before the
/// connection closed.
fn exchange(addr: std::net::SocketAddr, wire: &[u8]) -> Vec<u16> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // The peer may reset mid-write once it answers 4xx and closes; that is
    // a clean outcome, not a failure.
    let _ = stream.write_all(wire);
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut reader = BufReader::new(stream);
    let mut statuses = Vec::new();
    while let Ok(response) = http::read_response(&mut reader) {
        statuses.push(response.status);
    }
    statuses
}

/// The serving loop: every malformed conversation ends in 4xx/413 or a
/// clean close, no worker panics, and the server still answers `/healthz`.
#[test]
fn malformed_conversations_never_kill_workers() {
    let mut handle = Server::bind(ServerConfig {
        workers: 2,
        max_body_bytes: 64 * 1024,
        read_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr();

    for shape in 0u8..10 {
        for seed in [
            b"".as_slice(),
            b"{\"a\": [1, 2".as_slice(),
            &[0xFF, 0x00, 0xC3, 0x28],
        ] {
            let wire = malformed_request(shape, seed);
            for status in exchange(addr, &wire) {
                assert!(
                    (400..500).contains(&status),
                    "shape {shape}: expected 4xx or clean close, got {status}"
                );
            }
        }
    }

    // The server survived: health answers, no panics, no 5xx.
    let healthz = exchange(addr, b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(
        healthz,
        vec![200],
        "server must still answer after the fuzz"
    );
    let shared = handle.shared();
    let metrics = shared.metrics_value();
    let server = metrics.get("server").cloned().unwrap();
    assert_eq!(
        server.get("panics").and_then(serde::Value::as_f64),
        Some(0.0),
        "no worker may have panicked"
    );
    assert_eq!(
        server
            .get("responses")
            .and_then(|r| r.get("5xx"))
            .and_then(serde::Value::as_f64),
        Some(0.0),
        "malformed input must never become a 5xx"
    );
    handle.shutdown();
}
