use std::collections::HashMap;

use tsexplain_relation::AggState;

use crate::explanation::{ExplId, Explanation};

/// The raw result of candidate enumeration: every witnessed explanation of
/// order `1..=max_order`, with its per-timestamp aggregate-state series.
pub(crate) struct Enumeration {
    pub explanations: Vec<Explanation>,
    pub series: Vec<Vec<AggState>>,
}

/// Enumerates all candidate explanations witnessed by the data.
///
/// For every non-empty subset `S` of explain-by attributes with
/// `|S| ≤ max_order`, rows are grouped by their value combination over `S`;
/// each observed combination is one candidate explanation and its aggregate
/// state is accumulated per timestamp. This is the `ε` of the paper's
/// complexity analysis (§5.2) and the `ε` column of Table 6.
///
/// `attr_codes[a][row]` is the dictionary code of explain-by attribute `a`
/// in `row`; `time_codes[row] < n_times` is the row's timestamp index;
/// `measures[row]` the evaluated measure expression.
pub(crate) fn enumerate(
    time_codes: &[u32],
    n_times: usize,
    attr_codes: &[Vec<u32>],
    measures: &[f64],
    max_order: usize,
) -> Enumeration {
    let n_attrs = attr_codes.len();
    let n_rows = time_codes.len();
    let mut explanations: Vec<Explanation> = Vec::new();
    let mut series: Vec<Vec<AggState>> = Vec::new();

    for mask in 1u32..(1u32 << n_attrs) {
        let attrs: Vec<u16> = (0..n_attrs as u16)
            .filter(|&a| mask & (1 << a) != 0)
            .collect();
        if attrs.len() > max_order {
            continue;
        }
        let mut local: HashMap<Vec<u32>, ExplId> = HashMap::new();
        let mut key = vec![0u32; attrs.len()];
        for row in 0..n_rows {
            for (i, &a) in attrs.iter().enumerate() {
                key[i] = attr_codes[a as usize][row];
            }
            let id = match local.get(&key) {
                Some(&id) => id,
                None => {
                    let id = explanations.len() as ExplId;
                    local.insert(key.clone(), id);
                    let preds = attrs.iter().copied().zip(key.iter().copied()).collect();
                    explanations.push(Explanation::new(preds));
                    series.push(vec![AggState::ZERO; n_times]);
                    id
                }
            };
            series[id as usize][time_codes[row] as usize].observe(measures[row]);
        }
    }

    Enumeration {
        explanations,
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsexplain_relation::AggFn;

    /// Rows: (time, a0, a1, measure).
    fn run(rows: &[(u32, u32, u32, f64)], n_times: usize, max_order: usize) -> Enumeration {
        let time_codes: Vec<u32> = rows.iter().map(|r| r.0).collect();
        let a0: Vec<u32> = rows.iter().map(|r| r.1).collect();
        let a1: Vec<u32> = rows.iter().map(|r| r.2).collect();
        let measures: Vec<f64> = rows.iter().map(|r| r.3).collect();
        enumerate(&time_codes, n_times, &[a0, a1], &measures, max_order)
    }

    #[test]
    fn enumerates_only_witnessed_combinations() {
        // a0 ∈ {0,1}, a1 ∈ {0,1}, but (a0=1, a1=1) never occurs together.
        let rows = [(0, 0, 0, 1.0), (0, 1, 0, 2.0), (1, 0, 1, 3.0)];
        let e = run(&rows, 2, 2);
        // Order 1: a0=0, a0=1, a1=0, a1=1 → 4. Order 2: (0,0), (1,0), (0,1) → 3.
        assert_eq!(e.explanations.len(), 7);
        assert!(!e
            .explanations
            .iter()
            .any(|x| x.order() == 2 && x.code_for(0) == Some(1) && x.code_for(1) == Some(1)));
    }

    #[test]
    fn max_order_limits_subsets() {
        let rows = [(0, 0, 0, 1.0), (1, 1, 1, 2.0)];
        let e = run(&rows, 2, 1);
        assert!(e.explanations.iter().all(|x| x.order() == 1));
        assert_eq!(e.explanations.len(), 4);
    }

    #[test]
    fn series_accumulates_per_time() {
        let rows = [(0, 0, 0, 1.0), (0, 0, 1, 2.0), (1, 0, 0, 5.0)];
        let e = run(&rows, 2, 2);
        let idx = e
            .explanations
            .iter()
            .position(|x| x.order() == 1 && x.code_for(0) == Some(0))
            .unwrap();
        let s = &e.series[idx];
        assert_eq!(s[0].value(AggFn::Sum), 3.0);
        assert_eq!(s[1].value(AggFn::Sum), 5.0);
        assert_eq!(s[0].value(AggFn::Count), 2.0);
    }

    #[test]
    fn deterministic_order() {
        let rows = [(0, 0, 0, 1.0), (1, 1, 1, 2.0), (0, 1, 0, 3.0)];
        let a = run(&rows, 2, 2);
        let b = run(&rows, 2, 2);
        assert_eq!(a.explanations, b.explanations);
    }

    #[test]
    fn empty_input_yields_no_candidates() {
        let e = run(&[], 0, 3);
        assert!(e.explanations.is_empty());
    }
}
