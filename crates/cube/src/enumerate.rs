use std::collections::HashMap;

use tsexplain_parallel::ParallelCtx;
use tsexplain_relation::AggState;

use crate::explanation::{ExplId, Explanation};

/// The raw result of candidate enumeration: every witnessed explanation of
/// order `1..=max_order`, with its per-timestamp aggregate-state series.
pub(crate) struct Enumeration {
    pub explanations: Vec<Explanation>,
    pub series: Vec<Vec<AggState>>,
}

/// One attribute subset's share of an enumeration: the explanations it
/// witnessed (in first-witness row order) and their series. Subsets are
/// independent of one another, which is what the parallel builder exploits.
struct SubsetEnumeration {
    /// Value-combination → subset-local explanation id.
    group: HashMap<Vec<u32>, ExplId>,
    explanations: Vec<Explanation>,
    series: Vec<Vec<AggState>>,
}

impl SubsetEnumeration {
    /// The placeholder a cancelled worker emits; the builder discards the
    /// whole (truncated) enumeration once it re-checks the token.
    fn empty() -> Self {
        SubsetEnumeration {
            group: HashMap::new(),
            explanations: Vec::new(),
            series: Vec::new(),
        }
    }
}

/// All non-empty attribute subsets with `|S| ≤ max_order`, in ascending
/// bitmask order — the canonical enumeration order every cube builder
/// (batch and incremental) shares.
pub(crate) fn enumerate_subsets(n_attrs: usize, max_order: usize) -> Vec<Vec<u16>> {
    let max_order = max_order.min(n_attrs);
    let mut subsets = Vec::new();
    for mask in 1u32..(1u32 << n_attrs) {
        let attrs: Vec<u16> = (0..n_attrs as u16)
            .filter(|&a| mask & (1 << a) != 0)
            .collect();
        if attrs.len() <= max_order {
            subsets.push(attrs);
        }
    }
    subsets
}

/// Enumerates the candidates of one attribute subset: rows grouped by
/// their value combination over `attrs`, ids assigned in first-witness row
/// order — exactly the order a subset-major sequential scan would assign
/// within this subset's contiguous id block.
fn enumerate_subset<C: AsRef<[u32]>>(
    attrs: &[u16],
    time_codes: &[u32],
    n_times: usize,
    attr_codes: &[C],
    measures: &[f64],
) -> SubsetEnumeration {
    let mut local: HashMap<Vec<u32>, ExplId> = HashMap::new();
    let mut explanations: Vec<Explanation> = Vec::new();
    let mut series: Vec<Vec<AggState>> = Vec::new();
    let mut key = vec![0u32; attrs.len()];
    for row in 0..time_codes.len() {
        for (i, &a) in attrs.iter().enumerate() {
            key[i] = attr_codes[a as usize].as_ref()[row];
        }
        let id = match local.get(&key) {
            Some(&id) => id,
            None => {
                let id = explanations.len() as ExplId;
                local.insert(key.clone(), id);
                let preds = attrs.iter().copied().zip(key.iter().copied()).collect();
                explanations.push(Explanation::new(preds));
                series.push(vec![AggState::ZERO; n_times]);
                id
            }
        };
        series[id as usize][time_codes[row] as usize].observe(measures[row]);
    }
    SubsetEnumeration {
        group: local,
        explanations,
        series,
    }
}

/// Enumerates all candidate explanations witnessed by the data.
///
/// For every non-empty subset `S` of explain-by attributes with
/// `|S| ≤ max_order`, rows are grouped by their value combination over `S`;
/// each observed combination is one candidate explanation and its aggregate
/// state is accumulated per timestamp. This is the `ε` of the paper's
/// complexity analysis (§5.2) and the `ε` column of Table 6.
///
/// Subsets are mutually independent, so `par` fans them out across worker
/// threads; concatenating the per-subset blocks in subset order reproduces
/// the sequential scan's explanation ids byte-for-byte (a sequential
/// subset-major scan assigns each subset a contiguous id block anyway).
///
/// `attr_codes[a][row]` is the dictionary code of explain-by attribute `a`
/// in `row`; `time_codes[row] < n_times` is the row's timestamp index;
/// `measures[row]` the evaluated measure expression.
pub(crate) fn enumerate<C: AsRef<[u32]> + Sync>(
    time_codes: &[u32],
    n_times: usize,
    attr_codes: &[C],
    measures: &[f64],
    max_order: usize,
    par: &ParallelCtx,
) -> Enumeration {
    let subsets = enumerate_subsets(attr_codes.len(), max_order);
    let cancel = par.cancel_token().cloned();
    let parts = par.run_chunks(subsets.len(), |range| {
        range
            .map(|si| {
                // Subset-boundary poll: the builder re-checks after the
                // fan-out and discards any truncated enumeration.
                if cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                    return SubsetEnumeration::empty();
                }
                enumerate_subset(&subsets[si], time_codes, n_times, attr_codes, measures)
            })
            .collect()
    });
    let mut explanations = Vec::new();
    let mut series = Vec::new();
    for part in parts {
        explanations.extend(part.explanations);
        series.extend(part.series);
    }
    Enumeration {
        explanations,
        series,
    }
}

/// Per-subset group maps (value combination → global explanation id), the
/// seed state an incremental cube keeps alive between appends.
pub(crate) type SubsetGroups = Vec<HashMap<Vec<u32>, ExplId>>;

/// Like [`enumerate`], but also returning each subset's group map with ids
/// rebased onto the global (concatenated) id space — the seed state an
/// incremental cube keeps alive between appends.
pub(crate) fn enumerate_with_groups<C: AsRef<[u32]> + Sync>(
    subsets: &[Vec<u16>],
    time_codes: &[u32],
    n_times: usize,
    attr_codes: &[C],
    measures: &[f64],
    par: &ParallelCtx,
) -> (SubsetGroups, Vec<Explanation>, Vec<Vec<AggState>>) {
    let cancel = par.cancel_token().cloned();
    let parts = par.run_chunks(subsets.len(), |range| {
        range
            .map(|si| {
                if cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                    return SubsetEnumeration::empty();
                }
                enumerate_subset(&subsets[si], time_codes, n_times, attr_codes, measures)
            })
            .collect()
    });
    let mut groups = Vec::with_capacity(subsets.len());
    let mut explanations = Vec::new();
    let mut series = Vec::new();
    for mut part in parts {
        let offset = explanations.len() as ExplId;
        // tsx-lint: allow(map-iter, uniform += rebase of every value; order-insensitive mutation, no emission)
        for id in part.group.values_mut() {
            *id += offset;
        }
        groups.push(part.group);
        explanations.extend(part.explanations);
        series.extend(part.series);
    }
    (groups, explanations, series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsexplain_relation::AggFn;

    /// Rows: (time, a0, a1, measure).
    fn run(rows: &[(u32, u32, u32, f64)], n_times: usize, max_order: usize) -> Enumeration {
        run_with(rows, n_times, max_order, &ParallelCtx::sequential())
    }

    fn run_with(
        rows: &[(u32, u32, u32, f64)],
        n_times: usize,
        max_order: usize,
        par: &ParallelCtx,
    ) -> Enumeration {
        let time_codes: Vec<u32> = rows.iter().map(|r| r.0).collect();
        let a0: Vec<u32> = rows.iter().map(|r| r.1).collect();
        let a1: Vec<u32> = rows.iter().map(|r| r.2).collect();
        let measures: Vec<f64> = rows.iter().map(|r| r.3).collect();
        enumerate(&time_codes, n_times, &[a0, a1], &measures, max_order, par)
    }

    #[test]
    fn enumerates_only_witnessed_combinations() {
        // a0 ∈ {0,1}, a1 ∈ {0,1}, but (a0=1, a1=1) never occurs together.
        let rows = [(0, 0, 0, 1.0), (0, 1, 0, 2.0), (1, 0, 1, 3.0)];
        let e = run(&rows, 2, 2);
        // Order 1: a0=0, a0=1, a1=0, a1=1 → 4. Order 2: (0,0), (1,0), (0,1) → 3.
        assert_eq!(e.explanations.len(), 7);
        assert!(!e
            .explanations
            .iter()
            .any(|x| x.order() == 2 && x.code_for(0) == Some(1) && x.code_for(1) == Some(1)));
    }

    #[test]
    fn max_order_limits_subsets() {
        let rows = [(0, 0, 0, 1.0), (1, 1, 1, 2.0)];
        let e = run(&rows, 2, 1);
        assert!(e.explanations.iter().all(|x| x.order() == 1));
        assert_eq!(e.explanations.len(), 4);
    }

    #[test]
    fn series_accumulates_per_time() {
        let rows = [(0, 0, 0, 1.0), (0, 0, 1, 2.0), (1, 0, 0, 5.0)];
        let e = run(&rows, 2, 2);
        let idx = e
            .explanations
            .iter()
            .position(|x| x.order() == 1 && x.code_for(0) == Some(0))
            .unwrap();
        let s = &e.series[idx];
        assert_eq!(s[0].value(AggFn::Sum), 3.0);
        assert_eq!(s[1].value(AggFn::Sum), 5.0);
        assert_eq!(s[0].value(AggFn::Count), 2.0);
    }

    #[test]
    fn deterministic_order() {
        let rows = [(0, 0, 0, 1.0), (1, 1, 1, 2.0), (0, 1, 0, 3.0)];
        let a = run(&rows, 2, 2);
        let b = run(&rows, 2, 2);
        assert_eq!(a.explanations, b.explanations);
    }

    #[test]
    fn parallel_enumeration_is_byte_identical_to_sequential() {
        // A denser fixture: 40 rows over 2 attributes of 3 values each, so
        // every subset witnesses several combinations.
        let rows: Vec<(u32, u32, u32, f64)> = (0..40u32)
            .map(|i| (i % 5, i % 3, (i / 2) % 3, 0.25 * i as f64 - 3.0))
            .collect();
        let reference = run(&rows, 5, 2);
        for threads in [2, 3, 8] {
            let par = run_with(&rows, 5, 2, &ParallelCtx::new(threads));
            assert_eq!(par.explanations, reference.explanations, "t={threads}");
            assert_eq!(par.series, reference.series, "t={threads}");
        }
    }

    #[test]
    fn empty_input_yields_no_candidates() {
        let e = run(&[], 0, 3);
        assert!(e.explanations.is_empty());
    }
}
