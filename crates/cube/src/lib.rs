//! # tsexplain-cube
//!
//! Candidate-explanation enumeration and the per-explanation time-series
//! cube — module (a), "Precomputation", of the TSExplain pipeline
//! (paper §5.2, Fig. 7).
//!
//! Given a relation, a group-by time-series query and a set of *explain-by*
//! attributes, the cube:
//!
//! 1. enumerates every candidate explanation `E = (A1=a1 & … & Aβ=aβ)` of
//!    order `β ≤ β̄` that is actually witnessed by at least one row
//!    (Definition 3.1; β̄ defaults to 3 as in the paper),
//! 2. materializes the decomposable aggregate-state series `ts(σ_E R)` for
//!    every candidate, so that the absolute-change difference score of any
//!    segment is an O(1) endpoint computation,
//! 3. applies the paper's support `filter` (§7.5.1): an explanation whose
//!    series is pointwise below `ratio` × the overall series is marked
//!    non-selectable,
//! 4. builds the drill-down trie used by the Cascading Analysts algorithm
//!    (Fig. 8): `children(node, attr)` are the explanations refining `node`
//!    by one predicate on `attr`.

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout)]
mod cube;
mod enumerate;
mod error;
mod explanation;
mod incremental;
mod mem;
mod persist;
mod trie;
mod values;

pub use cube::{CubeCacheKey, CubeConfig, ExplanationCube};
pub use error::CubeError;
pub use explanation::{ExplId, Explanation};
pub use incremental::{AppendRow, IncrementalCube};
pub use trie::{DrillTrie, NodeId, ROOT_NODE};
pub use tsexplain_parallel::ParallelCtx;
pub use values::ValueMatrix;
