//! Time-major pre-decoded value storage — the columnar half of the cube.
//!
//! The cube's source of truth is the per-explanation [`AggState`] series
//! (`series[e][t]`): explanation-major, one heap allocation per candidate,
//! and an [`AggState::value`] enum dispatch on every read. That layout is
//! right for *maintenance* (appends touch one candidate at a time, and
//! semantics like `remove` on AVG need the full state), but exactly wrong
//! for the scoring hot loop, which scans γ(E, seg) across **all**
//! candidates at two fixed timestamps.
//!
//! [`ValueMatrix`] is the scan-friendly dual: one contiguous `f64` row per
//! timestamp holding every candidate's already-decoded aggregate value,
//! plus the decoded overall series. A batched scorer reads two rows
//! linearly — cache-friendly, branch-free, vectorizable — instead of
//! striding across ε allocations with a per-access `match`.
//!
//! Decoding is a pure function of the state and the aggregate function, so
//! a pre-decoded value is bit-identical to decoding on the fly; every
//! consumer switching from `state(e, t).value(agg)` to `row(t)[e]` keeps
//! byte-identical results by construction.

use tsexplain_relation::{AggFn, AggState};

/// Time-major matrix of pre-decoded aggregate values: `row(t)[e]` is
/// explanation `e`'s value at time index `t`, `totals()[t]` the overall
/// series (see module docs).
#[derive(Clone, Debug, Default)]
pub struct ValueMatrix {
    n_rows: usize,
    n_cols: usize,
    /// Row-major: `data[t * n_cols + e]`.
    data: Vec<f64>,
    totals: Vec<f64>,
}

impl ValueMatrix {
    /// Decodes `total` and `series` (explanation-major) into a time-major
    /// matrix under `agg`. One pass per candidate; done once at cube build.
    pub fn build(agg: AggFn, total: &[AggState], series: &[Vec<AggState>]) -> Self {
        let n_rows = total.len();
        let n_cols = series.len();
        let mut data = vec![0.0; n_rows * n_cols];
        for (e, s) in series.iter().enumerate() {
            debug_assert_eq!(s.len(), n_rows, "ragged state series");
            for (t, st) in s.iter().enumerate() {
                data[t * n_cols + e] = st.value(agg);
            }
        }
        let totals = total.iter().map(|st| st.value(agg)).collect();
        ValueMatrix {
            n_rows,
            n_cols,
            data,
            totals,
        }
    }

    /// An empty matrix with no rows over `n_cols` candidates.
    pub fn with_cols(n_cols: usize) -> Self {
        ValueMatrix {
            n_rows: 0,
            n_cols,
            data: Vec::new(),
            totals: Vec::new(),
        }
    }

    /// Reassembles a matrix from its raw parts — the snapshot-load path.
    /// Returns `None` when the dimensions are inconsistent with the data
    /// (a torn or corrupt snapshot must not become an out-of-bounds panic
    /// later).
    pub fn from_parts(
        n_rows: usize,
        n_cols: usize,
        data: Vec<f64>,
        totals: Vec<f64>,
    ) -> Option<Self> {
        if data.len() != n_rows.checked_mul(n_cols)? || totals.len() != n_rows {
            return None;
        }
        Some(ValueMatrix {
            n_rows,
            n_cols,
            data,
            totals,
        })
    }

    /// The full row-major value block (`data[t * n_cols + e]`) — what a
    /// block snapshot writes in one contiguous pass.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Number of time points (rows).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of candidates (columns).
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// The contiguous value row at time index `t` (one entry per
    /// candidate) — what the batched γ scorer scans.
    #[inline]
    pub fn row(&self, t: usize) -> &[f64] {
        &self.data[t * self.n_cols..(t + 1) * self.n_cols]
    }

    /// One pre-decoded value.
    #[inline]
    pub fn get(&self, t: usize, e: usize) -> f64 {
        self.data[t * self.n_cols + e]
    }

    /// The decoded overall value series.
    #[inline]
    pub fn totals(&self) -> &[f64] {
        &self.totals
    }

    /// The overall value at time index `t`.
    #[inline]
    pub fn total(&self, t: usize) -> f64 {
        self.totals[t]
    }

    /// The matrix restricted to rows `lo..=hi` — a pair of contiguous
    /// copies (no re-decoding), used by `ExplanationCube::slice_time`.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> ValueMatrix {
        debug_assert!(lo <= hi && hi < self.n_rows);
        ValueMatrix {
            n_rows: hi - lo + 1,
            n_cols: self.n_cols,
            data: self.data[lo * self.n_cols..(hi + 1) * self.n_cols].to_vec(),
            totals: self.totals[lo..=hi].to_vec(),
        }
    }

    /// Appends one decoded row at the tail (the incremental-append path).
    pub fn push_row(
        &mut self,
        agg: AggFn,
        total: AggState,
        states: impl Iterator<Item = AggState>,
    ) {
        let before = self.data.len();
        self.data.extend(states.map(|st| st.value(agg)));
        debug_assert_eq!(self.data.len() - before, self.n_cols, "row arity");
        self.totals.push(total.value(agg));
        self.n_rows += 1;
    }

    /// Re-decodes row `t` in place from the authoritative states — how an
    /// incremental cube repairs rows whose states changed under an append.
    pub fn redecode_row<'s>(
        &mut self,
        t: usize,
        agg: AggFn,
        total: AggState,
        states: impl Iterator<Item = &'s AggState>,
    ) {
        let row = &mut self.data[t * self.n_cols..(t + 1) * self.n_cols];
        let mut filled = 0;
        for (slot, st) in row.iter_mut().zip(states) {
            *slot = st.value(agg);
            filled += 1;
        }
        debug_assert_eq!(filled, self.n_cols, "row arity");
        self.totals[t] = total.value(agg);
    }

    /// Approximate heap + inline footprint in bytes (same contract as
    /// [`crate::mem`]: deterministic, monotone in rows × columns).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.data.len() * std::mem::size_of::<f64>()
            + self.totals.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(v: f64) -> AggState {
        AggState::of(v)
    }

    fn sample() -> (Vec<AggState>, Vec<Vec<AggState>>) {
        let total = vec![state(6.0), state(9.0), state(6.0)];
        let series = vec![
            vec![state(3.0), state(4.0), AggState::ZERO],
            vec![AggState::ZERO, state(5.0), state(6.0)],
        ];
        (total, series)
    }

    #[test]
    fn build_decodes_time_major() {
        let (total, series) = sample();
        let m = ValueMatrix::build(AggFn::Sum, &total, &series);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 2);
        assert_eq!(m.row(0), &[3.0, 0.0]);
        assert_eq!(m.row(1), &[4.0, 5.0]);
        assert_eq!(m.row(2), &[0.0, 6.0]);
        assert_eq!(m.totals(), &[6.0, 9.0, 6.0]);
        assert_eq!(m.get(1, 1), 5.0);
        assert_eq!(m.total(2), 6.0);
    }

    #[test]
    fn decode_matches_state_value_for_every_agg() {
        let (total, series) = sample();
        for agg in AggFn::ALL {
            let m = ValueMatrix::build(agg, &total, &series);
            for (e, s) in series.iter().enumerate() {
                for (t, st) in s.iter().enumerate() {
                    assert_eq!(m.get(t, e).to_bits(), st.value(agg).to_bits());
                }
            }
        }
    }

    #[test]
    fn slice_rows_is_a_contiguous_copy() {
        let (total, series) = sample();
        let m = ValueMatrix::build(AggFn::Sum, &total, &series);
        let s = m.slice_rows(1, 2);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.row(0), m.row(1));
        assert_eq!(s.row(1), m.row(2));
        assert_eq!(s.totals(), &m.totals()[1..=2]);
    }

    #[test]
    fn push_and_redecode_match_batch_build() {
        let (total, series) = sample();
        let batch = ValueMatrix::build(AggFn::Avg, &total, &series);
        let mut inc = ValueMatrix::with_cols(2);
        for t in 0..3 {
            inc.push_row(AggFn::Avg, total[t], series.iter().map(|s| s[t]));
        }
        assert_eq!(inc.row(1), batch.row(1));
        assert_eq!(inc.totals(), batch.totals());
        // Corrupt then repair a row.
        inc.redecode_row(0, AggFn::Avg, total[0], series.iter().map(|s| &s[0]));
        assert_eq!(inc.row(0), batch.row(0));
    }

    #[test]
    fn approx_bytes_monotone() {
        let (total, series) = sample();
        let m = ValueMatrix::build(AggFn::Sum, &total, &series);
        let s = m.slice_rows(0, 1);
        assert!(s.approx_bytes() < m.approx_bytes());
        assert!(m.approx_bytes() > 0);
    }
}
