//! Block-snapshot serialization of [`IncrementalCube`] state.
//!
//! A demoted or checkpointed cube is written as one self-describing binary
//! blob: a small header (config, aggregate, dictionaries, explanations)
//! followed by flat little-endian `f64` blocks — the aggregate-state
//! series and the time-major [`ValueMatrix`], which is already one
//! contiguous row-major allocation, so the hot part of the snapshot is a
//! single memcpy-style pass.
//!
//! Only the *logical* state is persisted. The derived lookup structures
//! (time index, dictionary indexes, subset list, per-subset group maps)
//! are pure functions of the logical state and are rebuilt on load, which
//! keeps the format small and makes a round-trip bit-identical by
//! construction: floats travel as raw IEEE-754 bits, codes and ids as
//! fixed-width integers, and every rebuilt map reproduces exactly the
//! entries the live cube held.
//!
//! Decoding is defensive end to end: every read is bounds-checked and
//! every structural invariant (pred sorted-ness, code ranges, series
//! arity, matrix dimensions) is re-validated, so a torn write or a bit
//! flip yields [`CubeError::CorruptSnapshot`] — never a panic and never a
//! cube that violates the invariants the scoring paths rely on. Integrity
//! of the bytes themselves (CRC) is the storage layer's job; this module
//! only guarantees that *whatever* bytes arrive cannot crash the decoder.

use std::collections::HashMap;

use tsexplain_relation::{AggFn, AggState, AttrValue};

use crate::cube::CubeConfig;
use crate::enumerate::enumerate_subsets;
use crate::error::CubeError;
use crate::explanation::{ExplId, Explanation};
use crate::incremental::IncrementalCube;
use crate::values::ValueMatrix;

/// Format magic: "TSXC" + version 1. Bump the trailing byte on layout
/// changes; old snapshots then fail the magic check and recovery rebuilds.
const MAGIC: &[u8; 8] = b"TSXCUB\x00\x01";

/// Explain-by attribute indices are `u16`, and the subset enumeration
/// masks with `1u32 << n_attrs`; anything wider than this is corrupt.
const MAX_ATTRS: usize = 16;

fn corrupt(what: impl Into<String>) -> CubeError {
    CubeError::CorruptSnapshot(what.into())
}

impl IncrementalCube {
    /// Serializes the cube's logical state into one snapshot blob (module
    /// docs). The inverse is [`IncrementalCube::from_snapshot_bytes`].
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.values.approx_bytes() * 4);
        out.extend_from_slice(MAGIC);

        // Config.
        put_u32(&mut out, self.config.explain_by.len() as u32);
        for name in &self.config.explain_by {
            put_str(&mut out, name);
        }
        put_u64(&mut out, self.config.max_order as u64);
        match self.config.filter_ratio {
            None => out.push(0),
            Some(r) => {
                out.push(1);
                put_u64(&mut out, r.to_bits());
            }
        }
        out.push(self.config.prune_redundant as u8);
        out.push(agg_tag(self.agg));
        put_u64(&mut out, self.rows_ingested as u64);

        // Time axis and per-attribute dictionaries, in code order.
        put_u64(&mut out, self.timestamps.len() as u64);
        for t in &self.timestamps {
            put_attr(&mut out, t);
        }
        for values in &self.dict_values {
            put_u64(&mut out, values.len() as u64);
            for v in values {
                put_attr(&mut out, v);
            }
        }

        // Explanations in id order (their order *is* the id space).
        put_u64(&mut out, self.explanations.len() as u64);
        for e in &self.explanations {
            put_u16(&mut out, e.preds().len() as u16);
            for &(attr, code) in e.preds() {
                put_u16(&mut out, attr);
                put_u32(&mut out, code);
            }
        }

        // Flat f64 blocks: total series, per-explanation series, matrix.
        for st in &self.total {
            put_state(&mut out, st);
        }
        for s in &self.series {
            debug_assert_eq!(s.len(), self.timestamps.len());
            for st in s {
                put_state(&mut out, st);
            }
        }
        put_u64(&mut out, self.values.n_rows() as u64);
        put_u64(&mut out, self.values.n_cols() as u64);
        for &x in self.values.data() {
            put_u64(&mut out, x.to_bits());
        }
        for &x in self.values.totals() {
            put_u64(&mut out, x.to_bits());
        }
        out
    }

    /// Reassembles a cube from snapshot bytes, rebuilding the derived
    /// lookup state and re-validating every invariant (module docs).
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, CubeError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.take(MAGIC.len())? != MAGIC {
            return Err(corrupt("bad magic / unsupported version"));
        }

        // Config.
        let n_attrs = r.u32()? as usize;
        if n_attrs == 0 || n_attrs > MAX_ATTRS {
            return Err(corrupt(format!("{n_attrs} explain-by attributes")));
        }
        let mut explain_by = Vec::with_capacity(n_attrs);
        for _ in 0..n_attrs {
            explain_by.push(r.str()?);
        }
        let max_order = r.u64()? as usize;
        if max_order == 0 {
            return Err(corrupt("zero max order"));
        }
        let filter_ratio = match r.u8()? {
            0 => None,
            1 => Some(f64::from_bits(r.u64()?)),
            t => return Err(corrupt(format!("filter-ratio tag {t}"))),
        };
        let prune_redundant = match r.u8()? {
            0 => false,
            1 => true,
            t => return Err(corrupt(format!("prune tag {t}"))),
        };
        let agg = agg_from_tag(r.u8()?)?;
        let rows_ingested = r.u64()? as usize;

        // Time axis and dictionaries; indexes rebuilt with duplicates
        // rejected (a live cube's codes are injective by construction).
        let n_times = r.counted(2)?;
        let mut timestamps = Vec::with_capacity(n_times);
        let mut time_index = HashMap::with_capacity(n_times);
        for _ in 0..n_times {
            let t = r.attr()?;
            if time_index
                .insert(t.clone(), timestamps.len() as u32)
                .is_some()
            {
                return Err(corrupt(format!("duplicate timestamp {t}")));
            }
            timestamps.push(t);
        }
        let mut dict_values = Vec::with_capacity(n_attrs);
        let mut dict_index = Vec::with_capacity(n_attrs);
        for _ in 0..n_attrs {
            let n = r.counted(2)?;
            let mut values = Vec::with_capacity(n);
            let mut index = HashMap::with_capacity(n);
            for _ in 0..n {
                let v = r.attr()?;
                if index.insert(v.clone(), values.len() as u32).is_some() {
                    return Err(corrupt(format!("duplicate dictionary value {v}")));
                }
                values.push(v);
            }
            dict_values.push(values);
            dict_index.push(index);
        }

        // Explanations, validated pred-by-pred before construction.
        let n_expl = r.counted(2)?;
        let mut explanations = Vec::with_capacity(n_expl);
        for _ in 0..n_expl {
            let n_preds = r.u16()? as usize;
            let mut preds = Vec::with_capacity(n_preds);
            for _ in 0..n_preds {
                let attr = r.u16()?;
                let code = r.u32()?;
                if attr as usize >= n_attrs {
                    return Err(corrupt(format!("pred attribute {attr} out of range")));
                }
                if code as usize >= dict_values[attr as usize].len() {
                    return Err(corrupt(format!("pred code {code} out of range")));
                }
                if let Some(&(prev, _)) = preds.last() {
                    if attr <= prev {
                        return Err(corrupt("unsorted or duplicate pred attributes"));
                    }
                }
                preds.push((attr, code));
            }
            if preds.is_empty() || preds.len() > max_order {
                return Err(corrupt(format!("explanation of order {}", preds.len())));
            }
            explanations.push(Explanation::new(preds));
        }

        // Flat state blocks.
        let mut total = Vec::with_capacity(n_times);
        for _ in 0..n_times {
            total.push(r.state()?);
        }
        let mut series = Vec::with_capacity(n_expl);
        for _ in 0..n_expl {
            let mut s = Vec::with_capacity(n_times);
            for _ in 0..n_times {
                s.push(r.state()?);
            }
            series.push(s);
        }
        let n_rows = r.u64()? as usize;
        let n_cols = r.u64()? as usize;
        if n_rows != n_times || n_cols != n_expl {
            return Err(corrupt(format!(
                "matrix is {n_rows}x{n_cols}, state is {n_times}x{n_expl}"
            )));
        }
        let cells = n_rows
            .checked_mul(n_cols)
            .ok_or_else(|| corrupt("matrix dimension overflow"))?;
        let mut data = Vec::with_capacity(r.block(cells, 8)?);
        for _ in 0..cells {
            data.push(f64::from_bits(r.u64()?));
        }
        let mut totals = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            totals.push(f64::from_bits(r.u64()?));
        }
        let values = ValueMatrix::from_parts(n_rows, n_cols, data, totals)
            .ok_or_else(|| corrupt("inconsistent matrix block"))?;
        if r.pos != r.buf.len() {
            return Err(corrupt(format!(
                "{} trailing bytes after snapshot",
                r.buf.len() - r.pos
            )));
        }

        // Rebuild the per-subset group maps: each explanation's sorted
        // attribute set names exactly one subset (both sides use ascending
        // attribute order), and its codes are the group key.
        let subsets = enumerate_subsets(n_attrs, max_order);
        let subset_of: HashMap<&[u16], usize> = subsets
            .iter()
            .enumerate()
            .map(|(si, attrs)| (attrs.as_slice(), si))
            .collect();
        let mut groups: Vec<HashMap<Vec<u32>, ExplId>> = vec![HashMap::new(); subsets.len()];
        for (id, e) in explanations.iter().enumerate() {
            let attrs: Vec<u16> = e.preds().iter().map(|p| p.0).collect();
            let codes: Vec<u32> = e.preds().iter().map(|p| p.1).collect();
            let &si = subset_of
                .get(attrs.as_slice())
                .ok_or_else(|| corrupt(format!("explanation {id} names no valid subset")))?;
            if groups[si].insert(codes, id as ExplId).is_some() {
                return Err(corrupt(format!("explanation {id} duplicates another")));
            }
        }

        Ok(IncrementalCube {
            config: CubeConfig {
                explain_by: explain_by.clone(),
                max_order,
                filter_ratio,
                prune_redundant,
            },
            agg,
            timestamps,
            time_index,
            attr_names: explain_by,
            dict_values,
            dict_index,
            subsets,
            groups,
            explanations,
            series,
            total,
            values,
            rows_ingested,
        })
    }
}

fn agg_tag(agg: AggFn) -> u8 {
    match agg {
        AggFn::Sum => 0,
        AggFn::Count => 1,
        AggFn::Avg => 2,
        AggFn::Variance => 3,
    }
}

fn agg_from_tag(tag: u8) -> Result<AggFn, CubeError> {
    match tag {
        0 => Ok(AggFn::Sum),
        1 => Ok(AggFn::Count),
        2 => Ok(AggFn::Avg),
        3 => Ok(AggFn::Variance),
        t => Err(corrupt(format!("aggregate tag {t}"))),
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_attr(out: &mut Vec<u8>, v: &AttrValue) {
    match v {
        AttrValue::Int(i) => {
            out.push(0);
            put_u64(out, *i as u64);
        }
        AttrValue::Str(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

fn put_state(out: &mut Vec<u8>, st: &AggState) {
    put_u64(out, st.count.to_bits());
    put_u64(out, st.sum.to_bits());
    put_u64(out, st.sumsq.to_bits());
}

/// A bounds-checked little-endian cursor: every primitive read fails with
/// [`CubeError::CorruptSnapshot`] instead of slicing out of range.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CubeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt("truncated snapshot"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, CubeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CubeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, CubeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CubeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, CubeError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("non-UTF-8 string"))
    }

    fn attr(&mut self) -> Result<AttrValue, CubeError> {
        match self.u8()? {
            0 => Ok(AttrValue::Int(self.u64()? as i64)),
            1 => Ok(AttrValue::from(self.str()?.as_str())),
            t => Err(corrupt(format!("attribute tag {t}"))),
        }
    }

    fn state(&mut self) -> Result<AggState, CubeError> {
        Ok(AggState {
            count: f64::from_bits(self.u64()?),
            sum: f64::from_bits(self.u64()?),
            sumsq: f64::from_bits(self.u64()?),
        })
    }

    /// Reads a u64 element count and sanity-checks it against the bytes
    /// actually remaining (each element occupies at least `min_size`
    /// bytes), so a corrupt length cannot trigger a huge allocation.
    fn counted(&mut self, min_size: usize) -> Result<usize, CubeError> {
        let n = self.u64()? as usize;
        self.block(n, min_size)?;
        Ok(n)
    }

    /// Checks that `n` elements of at least `min_size` bytes can still
    /// fit in the unread tail; returns `n`.
    fn block(&self, n: usize, min_size: usize) -> Result<usize, CubeError> {
        match n.checked_mul(min_size) {
            Some(need) if need <= self.buf.len() - self.pos => Ok(n),
            _ => Err(corrupt(format!("element count {n} exceeds snapshot size"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::ExplanationCube;
    use tsexplain_relation::{AggQuery, Datum, Field, MeasureExpr, Relation, Schema};

    fn sample_cube(filter: Option<f64>) -> IncrementalCube {
        let schema = Schema::new(vec![
            Field::dimension("t"),
            Field::dimension("state"),
            Field::dimension("pack"),
            Field::measure("v"),
        ])
        .unwrap();
        let mut b = Relation::builder(schema);
        for t in 0..6i64 {
            for (s, p, v) in [("NY", 6, 1.5), ("CA", 12, -2.0), ("NY", 12, 0.25)] {
                b.push_row(vec![
                    Datum::Attr(t.into()),
                    Datum::from(s),
                    Datum::Attr(AttrValue::Int(p)),
                    Datum::from(v * (t + 1) as f64),
                ])
                .unwrap();
            }
        }
        let rel = b.finish();
        let mut config = CubeConfig::new(["state", "pack"]);
        if let Some(r) = filter {
            config = config.with_filter_ratio(r);
        }
        let query = AggQuery::new("t", AggFn::Avg, MeasureExpr::Column("v".into()));
        IncrementalCube::from_relation(&rel, &query, &config).unwrap()
    }

    fn assert_bit_identical(a: &IncrementalCube, b: &IncrementalCube) {
        assert_eq!(a.timestamps, b.timestamps);
        assert_eq!(a.time_index, b.time_index);
        assert_eq!(a.attr_names, b.attr_names);
        assert_eq!(a.dict_values, b.dict_values);
        assert_eq!(a.dict_index, b.dict_index);
        assert_eq!(a.subsets, b.subsets);
        assert_eq!(a.groups, b.groups);
        assert_eq!(a.explanations, b.explanations);
        assert_eq!(a.rows_ingested, b.rows_ingested);
        for (x, y) in a.series.iter().flatten().zip(b.series.iter().flatten()) {
            assert_eq!(x.count.to_bits(), y.count.to_bits());
            assert_eq!(x.sum.to_bits(), y.sum.to_bits());
            assert_eq!(x.sumsq.to_bits(), y.sumsq.to_bits());
        }
        for (x, y) in a.values.data().iter().zip(b.values.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.values.totals().iter().zip(b.values.totals()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        for filter in [None, Some(0.001)] {
            let cube = sample_cube(filter);
            let back = IncrementalCube::from_snapshot_bytes(&cube.to_snapshot_bytes()).unwrap();
            assert_bit_identical(&cube, &back);
            assert_eq!(back.config().cache_key(), cube.config().cache_key());
        }
    }

    #[test]
    fn rehydrated_cube_keeps_appending_and_snapshotting() {
        let mut cube = sample_cube(Some(0.001));
        let mut back = IncrementalCube::from_snapshot_bytes(&cube.to_snapshot_bytes()).unwrap();
        let batch = vec![
            (AttrValue::Int(6), vec!["TX".into(), AttrValue::Int(6)], 9.0),
            (
                AttrValue::Int(7),
                vec!["NY".into(), AttrValue::Int(12)],
                1.0,
            ),
        ];
        cube.append_batch(&batch).unwrap();
        back.append_batch(&batch).unwrap();
        assert_bit_identical(&cube, &back);
        let a = cube.snapshot().unwrap();
        let b = back.snapshot().unwrap();
        assert_eq!(a.n_candidates(), b.n_candidates());
        for e in 0..a.n_candidates() as ExplId {
            assert_eq!(a.label(e), b.label(e));
            let (va, vb) = (a.value_series(e), b.value_series(e));
            assert_eq!(va.len(), vb.len());
            for (x, y) in va.iter().zip(&vb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn rehydrated_snapshot_equals_fresh_batch_build() {
        let cube = sample_cube(Some(0.001));
        let back = IncrementalCube::from_snapshot_bytes(&cube.to_snapshot_bytes()).unwrap();
        let fresh = cube.snapshot().unwrap();
        let rehydrated = back.snapshot().unwrap();
        assert_eq!(rehydrated.explanations(), fresh.explanations());
        assert_eq!(rehydrated.total_values(), fresh.total_values());
        let _: &ExplanationCube = &rehydrated;
    }

    #[test]
    fn every_truncation_point_is_rejected_not_panicking() {
        let bytes = sample_cube(Some(0.001)).to_snapshot_bytes();
        for cut in 0..bytes.len() {
            assert!(
                matches!(
                    IncrementalCube::from_snapshot_bytes(&bytes[..cut]),
                    Err(CubeError::CorruptSnapshot(_))
                ),
                "truncation at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn trailing_garbage_and_bad_magic_rejected() {
        let mut bytes = sample_cube(None).to_snapshot_bytes();
        bytes.push(0);
        assert!(IncrementalCube::from_snapshot_bytes(&bytes).is_err());
        let mut bad = sample_cube(None).to_snapshot_bytes();
        bad[0] ^= 0xff;
        assert!(matches!(
            IncrementalCube::from_snapshot_bytes(&bad),
            Err(CubeError::CorruptSnapshot(_))
        ));
        assert!(IncrementalCube::from_snapshot_bytes(&[]).is_err());
    }

    #[test]
    fn fingerprints_are_stable_and_distinguish_configs() {
        let a = CubeConfig::new(["state", "pack"]).cache_key().fingerprint();
        let b = CubeConfig::new(["pack", "state"]).cache_key().fingerprint();
        let c = CubeConfig::new(["state", "pack"])
            .with_filter_ratio(0.001)
            .cache_key()
            .fingerprint();
        let d = CubeConfig::new(["state", "pack"])
            .with_max_order(2)
            .cache_key()
            .fingerprint();
        assert_eq!(
            a,
            CubeConfig::new(["state", "pack"]).cache_key().fingerprint()
        );
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }
}
