//! Incrementally grown explanation cubes for streaming / serving sessions.
//!
//! [`crate::ExplanationCube::build`] scans every row of a materialized
//! relation. A live session that appends a handful of rows per refresh
//! cannot afford that: re-materializing and re-enumerating all history per
//! refresh is O(total rows × 2^|A|) each time. [`IncrementalCube`] keeps
//! the enumeration state (per-subset group maps, per-explanation state
//! series, dictionaries) alive between appends so that new rows cost only
//! O(new rows × 2^|A|), and produces an [`ExplanationCube`] snapshot on
//! demand through the same finalization path as the batch builder.
//!
//! Time moves forward only: appended rows must be at or after the current
//! horizon (the last known timestamp). Restating earlier timestamps
//! returns [`CubeError::RestatedTimestamp`] and leaves the cube untouched —
//! the caller is expected to rebuild from scratch, exactly as the paper's
//! streaming sketch (§8) assumes append-only arrival.
//!
//! Dictionary codes for attribute values first seen *after* construction
//! are assigned in order of appearance rather than sorted order. Labels,
//! drill-down structure and all scores are unaffected (codes are an
//! internal encoding); only the enumeration order of brand-new candidates
//! differs from a cold rebuild, which no pipeline stage depends on.

use std::collections::HashMap;

use tsexplain_parallel::ParallelCtx;
use tsexplain_relation::{AggFn, AggQuery, AggState, AttrValue, Dictionary, Relation};

use crate::cube::{CubeConfig, ExplanationCube};
use crate::enumerate::{enumerate_subsets, enumerate_with_groups};
use crate::error::CubeError;
use crate::explanation::{ExplId, Explanation};
use crate::values::ValueMatrix;

/// One raw appended observation: timestamp, explain-by values in the
/// cube's attribute order, and the already-evaluated measure.
pub type AppendRow = (AttrValue, Vec<AttrValue>, f64);

/// An explanation cube that grows at the tail (see module docs).
///
/// Fields are `pub(crate)` so [`crate::persist`] can serialize the logical
/// state to a block snapshot and reassemble it bit-identically.
#[derive(Clone, Debug)]
pub struct IncrementalCube {
    pub(crate) config: CubeConfig,
    pub(crate) agg: AggFn,
    /// Sorted, append-only time axis.
    pub(crate) timestamps: Vec<AttrValue>,
    pub(crate) time_index: HashMap<AttrValue, u32>,
    pub(crate) attr_names: Vec<String>,
    /// Per attribute: values in code order (sorted for values present at
    /// construction, then first-seen order).
    pub(crate) dict_values: Vec<Vec<AttrValue>>,
    pub(crate) dict_index: Vec<HashMap<AttrValue, u32>>,
    /// Attribute subsets `S` with `|S| <= max_order`, in the batch
    /// builder's mask order.
    pub(crate) subsets: Vec<Vec<u16>>,
    /// Per subset: value-combination -> explanation id.
    pub(crate) groups: Vec<HashMap<Vec<u32>, ExplId>>,
    pub(crate) explanations: Vec<Explanation>,
    pub(crate) series: Vec<Vec<AggState>>,
    pub(crate) total: Vec<AggState>,
    /// Time-major pre-decoded values, maintained incrementally: appends
    /// re-decode only the touched rows (or rebuild when new candidates
    /// appeared), and snapshots hand the matrix to the finalizer so the
    /// common no-prune case skips the O(ε·n) re-decode entirely.
    pub(crate) values: ValueMatrix,
    pub(crate) rows_ingested: usize,
}

impl IncrementalCube {
    /// Seeds an incremental cube from a materialized relation — the fast
    /// path for session construction, using the relation's columnar codes
    /// directly (same cost as one batch build) and the process-default
    /// parallel context.
    pub fn from_relation(
        rel: &Relation,
        query: &AggQuery,
        config: &CubeConfig,
    ) -> Result<Self, CubeError> {
        IncrementalCube::from_relation_with(rel, query, config, &ParallelCtx::from_env())
    }

    /// Seeds an incremental cube with an explicit parallel context: the
    /// per-subset enumeration fans out across `par`'s workers exactly like
    /// [`ExplanationCube::build_with`], and the resulting state (group
    /// maps, explanation order, series) is byte-identical at any thread
    /// count.
    pub fn from_relation_with(
        rel: &Relation,
        query: &AggQuery,
        config: &CubeConfig,
        par: &ParallelCtx,
    ) -> Result<Self, CubeError> {
        validate_config(config, query)?;
        if rel.is_empty() {
            return Err(CubeError::EmptyInput);
        }

        let time_col = rel.dim_column(query.time_attr())?;
        let n_times = time_col.dict().len();
        let measures = query.measure().eval(rel)?;

        let mut attr_codes: Vec<&[u32]> = Vec::with_capacity(config.explain_by.len());
        let mut dict_values = Vec::with_capacity(config.explain_by.len());
        let mut dict_index = Vec::with_capacity(config.explain_by.len());
        for a in &config.explain_by {
            let col = rel.dim_column(a)?;
            attr_codes.push(col.codes());
            let values = col.dict().values().to_vec();
            let index = values
                .iter()
                .enumerate()
                .map(|(i, v)| (v.clone(), i as u32))
                .collect();
            dict_values.push(values);
            dict_index.push(index);
        }

        let mut total = vec![AggState::ZERO; n_times];
        for (row, &code) in time_col.codes().iter().enumerate() {
            total[code as usize].observe(measures[row]);
        }

        let subsets = enumerate_subsets(config.explain_by.len(), config.max_order);
        let n_rows = time_col.codes().len();

        // The shared per-subset enumerator (subset-major, row-minor, each
        // subset an independent worker task) mirrors the batch builder
        // exactly, so a snapshot of a freshly seeded incremental cube is
        // structurally identical to `ExplanationCube::build` — at any
        // thread count.
        let (groups, explanations, series) = enumerate_with_groups(
            &subsets,
            time_col.codes(),
            n_times,
            &attr_codes,
            &measures,
            par,
        );
        // All-or-nothing: a cancelled fan-out joins with truncated subset
        // blocks — never seed incremental state from a partial enumeration.
        if par.is_cancelled() {
            return Err(CubeError::Cancelled);
        }
        debug_assert_eq!(
            explanations.len(),
            groups.iter().map(HashMap::len).sum::<usize>()
        );

        let values = ValueMatrix::build(query.agg(), &total, &series);
        Ok(IncrementalCube {
            config: config.clone(),
            agg: query.agg(),
            timestamps: time_col.dict().values().to_vec(),
            time_index: time_col
                .dict()
                .values()
                .iter()
                .enumerate()
                .map(|(i, v)| (v.clone(), i as u32))
                .collect(),
            attr_names: config.explain_by.clone(),
            dict_values,
            dict_index,
            subsets,
            groups,
            explanations,
            series,
            total,
            values,
            rows_ingested: n_rows,
        })
    }

    /// An empty incremental cube awaiting its first append — the streaming
    /// cold-start path.
    pub fn empty(query: &AggQuery, config: &CubeConfig) -> Result<Self, CubeError> {
        validate_config(config, query)?;
        let n_attrs = config.explain_by.len();
        let subsets = enumerate_subsets(n_attrs, config.max_order);
        Ok(IncrementalCube {
            config: config.clone(),
            agg: query.agg(),
            timestamps: Vec::new(),
            time_index: HashMap::new(),
            attr_names: config.explain_by.clone(),
            dict_values: vec![Vec::new(); n_attrs],
            dict_index: vec![HashMap::new(); n_attrs],
            groups: vec![HashMap::new(); subsets.len()],
            subsets,
            explanations: Vec::new(),
            series: Vec::new(),
            total: Vec::new(),
            values: ValueMatrix::with_cols(0),
            rows_ingested: 0,
        })
    }

    /// The configuration this cube is grown under.
    pub fn config(&self) -> &CubeConfig {
        &self.config
    }

    /// Number of points on the time axis so far.
    pub fn n_points(&self) -> usize {
        self.timestamps.len()
    }

    /// Number of candidate explanations enumerated so far (pre-pruning).
    pub fn n_candidates(&self) -> usize {
        self.explanations.len()
    }

    /// Total rows ingested (seed + appends).
    pub fn rows_ingested(&self) -> usize {
        self.rows_ingested
    }

    /// Approximate heap + inline footprint of the incremental enumeration
    /// state in bytes (see [`crate::mem`]'s module docs). Together with
    /// [`crate::ExplanationCube::approx_bytes`] on finalized snapshots this
    /// is what a byte-budgeted cube cache accounts per entry.
    pub fn approx_bytes(&self) -> usize {
        use crate::mem::*;
        use std::mem::size_of;
        let dicts: usize = self
            .dict_values
            .iter()
            .map(|values| attr_values_bytes(values))
            .sum::<usize>()
            + self
                .dict_index
                .iter()
                .flat_map(|index| index.keys())
                .map(|v| attr_value_bytes(v) + size_of::<u32>() + MAP_ENTRY_OVERHEAD)
                .sum::<usize>();
        let groups: usize = self
            .groups
            .iter()
            .flat_map(|g| g.keys())
            .map(|key| {
                size_of::<Vec<u32>>()
                    + key.len() * size_of::<u32>()
                    + size_of::<ExplId>()
                    + MAP_ENTRY_OVERHEAD
            })
            .sum();
        size_of::<Self>()
            + attr_values_bytes(&self.timestamps)
            + self
                .time_index
                .keys() // tsx-lint: allow(map-iter, order-insensitive byte-accounting sum; no emission)
                .map(|t| attr_value_bytes(t) + size_of::<u32>() + MAP_ENTRY_OVERHEAD)
                .sum::<usize>()
            + self.attr_names.iter().map(String::len).sum::<usize>()
            + dicts
            + self
                .subsets
                .iter()
                .map(|s| size_of::<Vec<u16>>() + s.len() * size_of::<u16>())
                .sum::<usize>()
            + groups
            + self
                .explanations
                .iter()
                .map(explanation_bytes)
                .sum::<usize>()
            + self
                .series
                .iter()
                .map(|s| state_series_bytes(s))
                .sum::<usize>()
            + state_series_bytes(&self.total)
            + self.values.approx_bytes()
    }

    /// The timestamps of the series so far, in time order.
    pub fn timestamps(&self) -> &[AttrValue] {
        &self.timestamps
    }

    /// Appends a batch of observations at the cube's tail.
    ///
    /// The batch is validated before any state changes (all-or-nothing):
    /// every row's timestamp must be at or after the current horizon, rows
    /// for *new* timestamps must appear in non-decreasing time order within
    /// the batch, and every row must carry one value per explain-by
    /// attribute. On [`CubeError::RestatedTimestamp`] the caller should
    /// fall back to a full rebuild.
    pub fn append_batch(&mut self, rows: &[AppendRow]) -> Result<(), CubeError> {
        // ---- validation pass: no mutation ------------------------------
        let horizon = self.timestamps.last().cloned();
        let mut newest: Option<&AttrValue> = None;
        for (time, attrs, _measure) in rows {
            if attrs.len() != self.attr_names.len() {
                return Err(CubeError::ArityMismatch {
                    expected: self.attr_names.len(),
                    got: attrs.len(),
                });
            }
            if let Some(h) = &horizon {
                if time < h {
                    return Err(CubeError::RestatedTimestamp(time.to_string()));
                }
            }
            if !self.time_index.contains_key(time) {
                // A new timestamp: it must not precede newer data already
                // seen in this batch (codes are assigned in encounter
                // order and must stay time-ordered).
                if let Some(n) = newest {
                    if time < n {
                        return Err(CubeError::RestatedTimestamp(time.to_string()));
                    }
                }
            }
            if newest.is_none_or(|n| time > n) {
                newest = Some(time);
            }
        }

        // ---- ingestion pass --------------------------------------------
        let cols_before = self.explanations.len();
        let rows_before = self.timestamps.len();
        // Existing rows whose states this batch changes (appends at the
        // current horizon); re-decoded after ingestion.
        let mut touched_rows: Vec<usize> = Vec::new();
        for (time, attrs, measure) in rows {
            let tcode = match self.time_index.get(time) {
                Some(&c) => c,
                None => {
                    let c = self.timestamps.len() as u32;
                    self.timestamps.push(time.clone());
                    self.time_index.insert(time.clone(), c);
                    self.total.push(AggState::ZERO);
                    for s in &mut self.series {
                        s.push(AggState::ZERO);
                    }
                    c
                }
            };
            let t = tcode as usize;
            if t < rows_before && touched_rows.last() != Some(&t) {
                touched_rows.push(t);
            }
            self.total[t].observe(*measure);

            let codes: Vec<u32> = attrs
                .iter()
                .enumerate()
                .map(|(a, value)| match self.dict_index[a].get(value) {
                    Some(&c) => c,
                    None => {
                        let c = self.dict_values[a].len() as u32;
                        self.dict_values[a].push(value.clone());
                        self.dict_index[a].insert(value.clone(), c);
                        c
                    }
                })
                .collect();

            let n_now = self.timestamps.len();
            for (si, attrs_of_subset) in self.subsets.iter().enumerate() {
                let key: Vec<u32> = attrs_of_subset.iter().map(|&a| codes[a as usize]).collect();
                let id = match self.groups[si].get(&key) {
                    Some(&id) => id,
                    None => {
                        let id = self.explanations.len() as ExplId;
                        self.groups[si].insert(key.clone(), id);
                        let preds = attrs_of_subset
                            .iter()
                            .copied()
                            .zip(key.iter().copied())
                            .collect();
                        self.explanations.push(Explanation::new(preds));
                        self.series.push(vec![AggState::ZERO; n_now]);
                        id
                    }
                };
                self.series[id as usize][t].observe(*measure);
            }
            self.rows_ingested += 1;
        }

        // ---- columnar maintenance --------------------------------------
        if self.explanations.len() != cols_before {
            // New candidates widen every row; rebuild in one pass.
            self.values = ValueMatrix::build(self.agg, &self.total, &self.series);
        } else {
            touched_rows.sort_unstable();
            touched_rows.dedup();
            for &t in &touched_rows {
                self.values.redecode_row(
                    t,
                    self.agg,
                    self.total[t],
                    self.series.iter().map(|s| &s[t]),
                );
            }
            for t in rows_before..self.timestamps.len() {
                self.values
                    .push_row(self.agg, self.total[t], self.series.iter().map(|s| s[t]));
            }
        }
        Ok(())
    }

    /// Finalizes the current state into an [`ExplanationCube`] through the
    /// same path as the batch builder (redundancy pruning, trie, index,
    /// support filter).
    pub fn snapshot(&self) -> Result<ExplanationCube, CubeError> {
        if self.timestamps.is_empty() {
            return Err(CubeError::EmptyInput);
        }
        Ok(ExplanationCube::assemble(
            self.timestamps.clone(),
            self.agg,
            self.total.clone(),
            self.attr_names.clone(),
            self.dict_values
                .iter()
                .map(|values| Dictionary::from_ordered_values(values.clone()))
                .collect(),
            self.explanations.clone(),
            self.series.clone(),
            Some(self.values.clone()),
            self.config.filter_ratio,
            self.config.prune_redundant,
        ))
    }
}

fn validate_config(config: &CubeConfig, query: &AggQuery) -> Result<(), CubeError> {
    if config.explain_by.is_empty() {
        return Err(CubeError::NoExplainBy);
    }
    if config.max_order == 0 {
        return Err(CubeError::ZeroMaxOrder);
    }
    for (i, a) in config.explain_by.iter().enumerate() {
        if a == query.time_attr() {
            return Err(CubeError::TimeAttrInExplainBy(a.clone()));
        }
        if config.explain_by[..i].contains(a) {
            return Err(CubeError::DuplicateExplainBy(a.clone()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsexplain_relation::{Datum, Field, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::dimension("t"),
            Field::dimension("state"),
            Field::dimension("pack"),
            Field::measure("v"),
        ])
        .unwrap()
    }

    fn row(t: i64, s: &str, p: i64, v: f64) -> Vec<Datum> {
        vec![
            Datum::Attr(t.into()),
            Datum::from(s),
            Datum::Attr(AttrValue::Int(p)).clone(),
            Datum::from(v),
        ]
    }

    fn relation_of(rows: &[Vec<Datum>]) -> Relation {
        let mut b = Relation::builder(schema());
        for r in rows {
            b.push_row(r.clone()).unwrap();
        }
        b.finish()
    }

    fn append_row_of(r: &[Datum]) -> AppendRow {
        let time = match &r[0] {
            Datum::Attr(v) => v.clone(),
            _ => unreachable!(),
        };
        let attrs: Vec<AttrValue> = r[1..3]
            .iter()
            .map(|d| match d {
                Datum::Attr(v) => v.clone(),
                _ => unreachable!(),
            })
            .collect();
        let measure = match &r[3] {
            Datum::Num(v) => *v,
            _ => unreachable!(),
        };
        (time, attrs, measure)
    }

    fn sample_rows(range: std::ops::Range<i64>) -> Vec<Vec<Datum>> {
        let mut rows = Vec::new();
        for t in range {
            rows.push(row(t, "NY", 6, 1.0 + t as f64));
            rows.push(row(t, "CA", 12, 2.0 * t as f64));
            if t % 2 == 0 {
                rows.push(row(t, "NY", 12, 0.5));
            }
        }
        rows
    }

    fn config() -> CubeConfig {
        CubeConfig::new(["state", "pack"]).with_filter_ratio(0.001)
    }

    #[test]
    fn seeded_snapshot_equals_batch_build() {
        let rows = sample_rows(0..8);
        let rel = relation_of(&rows);
        let query = AggQuery::sum("t", "v");
        let batch = ExplanationCube::build(&rel, &query, &config()).unwrap();
        let inc = IncrementalCube::from_relation(&rel, &query, &config()).unwrap();
        let snap = inc.snapshot().unwrap();
        assert_eq!(snap.n_points(), batch.n_points());
        assert_eq!(snap.n_candidates(), batch.n_candidates());
        assert_eq!(snap.explanations(), batch.explanations());
        for e in 0..batch.n_candidates() as ExplId {
            assert_eq!(snap.label(e), batch.label(e));
            assert_eq!(snap.value_series(e), batch.value_series(e));
            assert_eq!(snap.is_selectable(e), batch.is_selectable(e));
        }
        assert_eq!(snap.total_values(), batch.total_values());
    }

    #[test]
    fn appended_tail_matches_full_rebuild_values() {
        let all = sample_rows(0..10);
        let (head, tail): (Vec<_>, Vec<_>) = {
            let split = all
                .iter()
                .position(|r| matches!(&r[0], Datum::Attr(AttrValue::Int(t)) if *t >= 6))
                .unwrap();
            (all[..split].to_vec(), all[split..].to_vec())
        };

        let query = AggQuery::sum("t", "v");
        let mut inc =
            IncrementalCube::from_relation(&relation_of(&head), &query, &config()).unwrap();
        let tail_rows: Vec<AppendRow> = tail.iter().map(|r| append_row_of(r)).collect();
        inc.append_batch(&tail_rows).unwrap();
        let snap = inc.snapshot().unwrap();

        let full = ExplanationCube::build(&relation_of(&all), &query, &config()).unwrap();
        assert_eq!(snap.n_points(), full.n_points());
        assert_eq!(snap.n_candidates(), full.n_candidates());
        assert_eq!(snap.total_values(), full.total_values());
        // Values must agree label-by-label (enumeration order of candidates
        // first seen in the tail may differ; values may not).
        for e in 0..full.n_candidates() as ExplId {
            let label = full.label(e);
            let ours = (0..snap.n_candidates() as ExplId)
                .find(|&i| snap.label(i) == label)
                .unwrap_or_else(|| panic!("label {label} missing from snapshot"));
            assert_eq!(snap.value_series(ours), full.value_series(e), "{label}");
            assert_eq!(snap.is_selectable(ours), full.is_selectable(e), "{label}");
        }
    }

    #[test]
    fn parallel_seed_is_byte_identical_to_sequential() {
        let rows = sample_rows(0..10);
        let rel = relation_of(&rows);
        let query = AggQuery::sum("t", "v");
        let seq = IncrementalCube::from_relation_with(
            &rel,
            &query,
            &config(),
            &ParallelCtx::sequential(),
        )
        .unwrap();
        for threads in [2, 3, 8] {
            let par = IncrementalCube::from_relation_with(
                &rel,
                &query,
                &config(),
                &ParallelCtx::new(threads),
            )
            .unwrap();
            assert_eq!(par.explanations, seq.explanations, "t={threads}");
            assert_eq!(par.series, seq.series, "t={threads}");
            assert_eq!(par.groups, seq.groups, "t={threads}");
            assert_eq!(par.total, seq.total, "t={threads}");
        }
    }

    #[test]
    fn cold_start_via_empty_matches_batch_values() {
        let all = sample_rows(0..6);
        let query = AggQuery::sum("t", "v");
        let mut inc = IncrementalCube::empty(&query, &config()).unwrap();
        let rows: Vec<AppendRow> = all.iter().map(|r| append_row_of(r)).collect();
        inc.append_batch(&rows).unwrap();
        let snap = inc.snapshot().unwrap();
        let full = ExplanationCube::build(&relation_of(&all), &query, &config()).unwrap();
        assert_eq!(snap.n_points(), full.n_points());
        assert_eq!(snap.total_values(), full.total_values());
        assert_eq!(snap.n_candidates(), full.n_candidates());
    }

    #[test]
    fn tail_updates_to_last_timestamp_are_accepted() {
        let query = AggQuery::sum("t", "v");
        let mut inc =
            IncrementalCube::from_relation(&relation_of(&sample_rows(0..4)), &query, &config())
                .unwrap();
        let before = inc.snapshot().unwrap().total_value(3);
        inc.append_batch(&[append_row_of(&row(3, "TX", 6, 10.0))])
            .unwrap();
        let after = inc.snapshot().unwrap();
        assert_eq!(after.n_points(), 4);
        assert!((after.total_value(3) - (before + 10.0)).abs() < 1e-9);
    }

    #[test]
    fn restated_timestamps_rejected_atomically() {
        let query = AggQuery::sum("t", "v");
        let mut inc =
            IncrementalCube::from_relation(&relation_of(&sample_rows(0..5)), &query, &config())
                .unwrap();
        let snapshot_before = inc.snapshot().unwrap();
        let err = inc
            .append_batch(&[
                append_row_of(&row(5, "NY", 6, 1.0)),
                append_row_of(&row(2, "NY", 6, 1.0)),
            ])
            .unwrap_err();
        assert!(matches!(err, CubeError::RestatedTimestamp(_)));
        // Nothing was ingested (validation precedes mutation).
        let after = inc.snapshot().unwrap();
        assert_eq!(after.n_points(), snapshot_before.n_points());
        assert_eq!(after.total_values(), snapshot_before.total_values());
    }

    #[test]
    fn out_of_order_new_timestamps_within_batch_rejected() {
        let query = AggQuery::sum("t", "v");
        let mut inc =
            IncrementalCube::from_relation(&relation_of(&sample_rows(0..3)), &query, &config())
                .unwrap();
        let err = inc
            .append_batch(&[
                append_row_of(&row(5, "NY", 6, 1.0)),
                append_row_of(&row(4, "NY", 6, 1.0)),
            ])
            .unwrap_err();
        assert!(matches!(err, CubeError::RestatedTimestamp(_)));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let query = AggQuery::sum("t", "v");
        let mut inc =
            IncrementalCube::from_relation(&relation_of(&sample_rows(0..3)), &query, &config())
                .unwrap();
        let err = inc
            .append_batch(&[(AttrValue::Int(9), vec![AttrValue::from("NY")], 1.0)])
            .unwrap_err();
        assert!(matches!(
            err,
            CubeError::ArityMismatch {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn new_attribute_values_get_fresh_codes_and_labels() {
        let query = AggQuery::sum("t", "v");
        let mut inc =
            IncrementalCube::from_relation(&relation_of(&sample_rows(0..3)), &query, &config())
                .unwrap();
        inc.append_batch(&[append_row_of(&row(3, "AK", 6, 50.0))])
            .unwrap();
        let snap = inc.snapshot().unwrap();
        let ak = (0..snap.n_candidates() as ExplId)
            .find(|&e| snap.label(e) == "state=AK")
            .expect("AK candidate exists");
        assert_eq!(snap.value_series(ak), vec![0.0, 0.0, 0.0, 50.0]);
    }

    #[test]
    fn approx_bytes_grows_with_appended_data() {
        let query = AggQuery::sum("t", "v");
        let mut inc =
            IncrementalCube::from_relation(&relation_of(&sample_rows(0..4)), &query, &config())
                .unwrap();
        let before = inc.approx_bytes();
        assert!(before > 0);
        inc.append_batch(
            &sample_rows(4..12)
                .iter()
                .map(|r| append_row_of(r))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(
            inc.approx_bytes() > before,
            "appends must grow the estimate"
        );
    }

    #[test]
    fn empty_cube_refuses_snapshot_until_data_arrives() {
        let query = AggQuery::sum("t", "v");
        let inc = IncrementalCube::empty(&query, &config()).unwrap();
        assert!(matches!(inc.snapshot(), Err(CubeError::EmptyInput)));
    }

    #[test]
    fn validation_matches_batch_builder() {
        let query = AggQuery::sum("t", "v");
        assert!(matches!(
            IncrementalCube::empty(&query, &CubeConfig::new(Vec::<String>::new())),
            Err(CubeError::NoExplainBy)
        ));
        assert!(matches!(
            IncrementalCube::empty(&query, &CubeConfig::new(["t"])),
            Err(CubeError::TimeAttrInExplainBy(_))
        ));
        assert!(matches!(
            IncrementalCube::empty(&query, &CubeConfig::new(["state", "state"])),
            Err(CubeError::DuplicateExplainBy(_))
        ));
        assert!(matches!(
            IncrementalCube::empty(&query, &CubeConfig::new(["state"]).with_max_order(0)),
            Err(CubeError::ZeroMaxOrder)
        ));
    }
}
