use std::fmt;

use tsexplain_relation::{AttrValue, Conjunction, Dictionary, Predicate};

/// Index of an explanation within its [`crate::ExplanationCube`].
pub type ExplId = u32;

/// A candidate explanation: a conjunction of equality predicates over the
/// explain-by attributes (Definition 3.1), stored compactly as
/// `(attr index, dictionary code)` pairs sorted by attribute index.
///
/// The attribute index refers to the cube's explain-by attribute list; the
/// code refers to that attribute's dictionary.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Explanation {
    preds: Vec<(u16, u32)>,
}

impl Explanation {
    /// Builds an explanation from `(attr, code)` pairs; sorts them by
    /// attribute index.
    ///
    /// # Panics
    /// Panics (debug) if the same attribute appears twice — a conjunction
    /// `A=a & A=b` is either redundant or empty and never enumerated.
    pub fn new(mut preds: Vec<(u16, u32)>) -> Self {
        preds.sort_unstable();
        debug_assert!(
            preds.windows(2).all(|w| w[0].0 != w[1].0),
            "explanations must not repeat an attribute"
        );
        Explanation { preds }
    }

    /// The `(attr, code)` pairs, sorted by attribute index.
    pub fn preds(&self) -> &[(u16, u32)] {
        &self.preds
    }

    /// The order β of the explanation (Definition 3.1).
    pub fn order(&self) -> usize {
        self.preds.len()
    }

    /// True if `attr` is constrained by this explanation.
    pub fn constrains(&self, attr: u16) -> bool {
        self.preds.binary_search_by_key(&attr, |p| p.0).is_ok()
    }

    /// The code this explanation requires for `attr`, if constrained.
    pub fn code_for(&self, attr: u16) -> Option<u32> {
        self.preds
            .binary_search_by_key(&attr, |p| p.0)
            .ok()
            .map(|i| self.preds[i].1)
    }

    /// The explanation with the predicate on `attr` removed (the drill-down
    /// parent along `attr`). Returns `None` if `attr` is unconstrained.
    pub fn without(&self, attr: u16) -> Option<Explanation> {
        let idx = self.preds.binary_search_by_key(&attr, |p| p.0).ok()?;
        let mut preds = self.preds.clone();
        preds.remove(idx);
        Some(Explanation { preds })
    }

    /// The explanation refined with `attr = code`.
    pub fn with(&self, attr: u16, code: u32) -> Explanation {
        let mut preds = self.preds.clone();
        preds.push((attr, code));
        Explanation::new(preds)
    }

    /// Two explanations are *non-overlapping* (Definition 3.4) when no
    /// relation can contain a row satisfying both, i.e. when they constrain
    /// some shared attribute to different values.
    ///
    /// Conversely they *overlap* when their predicates are compatible:
    /// every shared attribute is constrained to the same value (e.g.
    /// `state=WA` overlaps `state=WA & age=50+`).
    pub fn overlaps(&self, other: &Explanation) -> bool {
        // Merge-walk the sorted predicate lists.
        let (mut i, mut j) = (0, 0);
        while i < self.preds.len() && j < other.preds.len() {
            let (a, ca) = self.preds[i];
            let (b, cb) = other.preds[j];
            match a.cmp(&b) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if ca != cb {
                        return false;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        true
    }

    /// Renders the explanation with attribute names and decoded values,
    /// e.g. `"state=NY"` or `"BV=1750 & P=6"`.
    pub fn describe(&self, attr_names: &[String], dicts: &[Dictionary]) -> String {
        if self.preds.is_empty() {
            return "TRUE".to_string();
        }
        let mut out = String::new();
        for (i, &(attr, code)) in self.preds.iter().enumerate() {
            if i > 0 {
                out.push_str(" & ");
            }
            let name = &attr_names[attr as usize];
            let value = dicts[attr as usize].value(code);
            out.push_str(&format!("{name}={value}"));
        }
        out
    }

    /// Converts to a relation-level [`Conjunction`] for re-querying the base
    /// relation.
    pub fn to_conjunction(&self, attr_names: &[String], dicts: &[Dictionary]) -> Conjunction {
        let preds = self
            .preds
            .iter()
            .map(|&(attr, code)| {
                let value: AttrValue = dicts[attr as usize].value(code).clone();
                Predicate::equals(attr_names[attr as usize].clone(), value)
            })
            .collect();
        Conjunction::of(preds)
    }
}

impl std::borrow::Borrow<[(u16, u32)]> for Explanation {
    /// Explanations hash and compare exactly like their sorted predicate
    /// slices (the derived impls delegate to the inner `Vec`), so a
    /// `HashMap<Explanation, _>` can be probed with a borrowed scratch
    /// slice — no per-lookup allocation.
    fn borrow(&self) -> &[(u16, u32)] {
        &self.preds
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.preds.is_empty() {
            return write!(f, "TRUE");
        }
        for (i, (attr, code)) in self.preds.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "A{attr}=#{code}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preds_are_sorted() {
        let e = Explanation::new(vec![(2, 5), (0, 1)]);
        assert_eq!(e.preds(), &[(0, 1), (2, 5)]);
        assert_eq!(e.order(), 2);
    }

    #[test]
    fn without_removes_one_attr() {
        let e = Explanation::new(vec![(0, 1), (2, 5)]);
        assert_eq!(e.without(2).unwrap(), Explanation::new(vec![(0, 1)]));
        assert_eq!(e.without(1), None);
    }

    #[test]
    fn with_adds_pred() {
        let e = Explanation::new(vec![(1, 3)]);
        assert_eq!(e.with(0, 7), Explanation::new(vec![(0, 7), (1, 3)]));
    }

    #[test]
    fn overlap_same_attr_diff_value_disjoint() {
        let ny = Explanation::new(vec![(0, 1)]);
        let ca = Explanation::new(vec![(0, 2)]);
        assert!(!ny.overlaps(&ca));
    }

    #[test]
    fn overlap_refinement_overlaps() {
        let wa = Explanation::new(vec![(0, 1)]);
        let wa_old = Explanation::new(vec![(0, 1), (1, 9)]);
        assert!(wa.overlaps(&wa_old));
        assert!(wa_old.overlaps(&wa));
    }

    #[test]
    fn overlap_disjoint_attrs_overlap() {
        // state=NY and pack=12 can both hold for one row.
        let a = Explanation::new(vec![(0, 1)]);
        let b = Explanation::new(vec![(1, 4)]);
        assert!(a.overlaps(&b));
    }

    #[test]
    fn code_lookup() {
        let e = Explanation::new(vec![(0, 1), (3, 9)]);
        assert!(e.constrains(3));
        assert!(!e.constrains(2));
        assert_eq!(e.code_for(3), Some(9));
        assert_eq!(e.code_for(2), None);
    }

    #[test]
    fn describe_with_dicts() {
        let names = vec!["state".to_string(), "pack".to_string()];
        let dicts = vec![
            Dictionary::from_values(["CA", "NY"].map(AttrValue::from)),
            Dictionary::from_values([6i64, 12].map(AttrValue::from)),
        ];
        let e = Explanation::new(vec![(0, 1), (1, 1)]);
        assert_eq!(e.describe(&names, &dicts), "state=NY & pack=12");
        let empty = Explanation::new(vec![]);
        assert_eq!(empty.describe(&names, &dicts), "TRUE");
    }
}
