use std::fmt;

use tsexplain_relation::RelationError;

/// Errors produced while building an [`crate::ExplanationCube`].
#[derive(Clone, Debug, PartialEq)]
pub enum CubeError {
    /// A substrate error (unknown attribute, type mismatch, …).
    Relation(RelationError),
    /// No explain-by attributes were given.
    NoExplainBy,
    /// The time attribute was listed among the explain-by attributes.
    TimeAttrInExplainBy(String),
    /// The same attribute was listed twice in explain-by.
    DuplicateExplainBy(String),
    /// The maximum explanation order β̄ must be at least 1.
    ZeroMaxOrder,
    /// The relation has no rows / the series has no points.
    EmptyInput,
    /// A time-window slice was empty or out of bounds.
    InvalidTimeSlice {
        /// Requested start point index (inclusive).
        lo: usize,
        /// Requested end point index (inclusive).
        hi: usize,
        /// Series length.
        n: usize,
    },
    /// An incremental append carried a timestamp before the cube's horizon
    /// (data restatement) — the caller must rebuild from scratch instead.
    RestatedTimestamp(String),
    /// An incremental append's row had the wrong number of explain-by
    /// values.
    ArityMismatch {
        /// Number of explain-by attributes the cube was built with.
        expected: usize,
        /// Number of values in the offending row.
        got: usize,
    },
    /// A persisted cube snapshot failed to decode (torn write, bit flip,
    /// wrong version). Recovery treats this as "no snapshot" and rebuilds —
    /// it must never panic.
    CorruptSnapshot(String),
    /// The request's cancel token tripped mid-build; the partial cube was
    /// discarded (all-or-nothing — nothing half-built reaches the cache).
    Cancelled,
}

impl fmt::Display for CubeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CubeError::Relation(e) => write!(f, "relation error: {e}"),
            CubeError::NoExplainBy => write!(f, "at least one explain-by attribute is required"),
            CubeError::TimeAttrInExplainBy(a) => {
                write!(
                    f,
                    "time attribute {a:?} cannot also be an explain-by attribute"
                )
            }
            CubeError::DuplicateExplainBy(a) => {
                write!(f, "duplicate explain-by attribute {a:?}")
            }
            CubeError::ZeroMaxOrder => write!(f, "max explanation order must be >= 1"),
            CubeError::EmptyInput => write!(f, "cannot build a cube from an empty relation"),
            CubeError::InvalidTimeSlice { lo, hi, n } => {
                write!(f, "time slice [{lo}, {hi}] invalid for a series of {n} points (need >= 2 points in range)")
            }
            CubeError::RestatedTimestamp(t) => {
                write!(f, "timestamp {t:?} lies before the cube's horizon; incremental append only accepts tail data")
            }
            CubeError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "appended row has {got} explain-by value(s); cube expects {expected}"
                )
            }
            CubeError::CorruptSnapshot(what) => {
                write!(f, "corrupt cube snapshot: {what}")
            }
            CubeError::Cancelled => {
                write!(f, "cube build cancelled before completing")
            }
        }
    }
}

impl std::error::Error for CubeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CubeError::Relation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for CubeError {
    fn from(e: RelationError) -> Self {
        CubeError::Relation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_context() {
        let e = CubeError::TimeAttrInExplainBy("date".into());
        assert!(e.to_string().contains("date"));
        let e: CubeError = RelationError::UnknownField("x".into()).into();
        assert!(e.to_string().contains("x"));
    }
}
