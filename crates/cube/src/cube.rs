use std::collections::HashMap;

use tsexplain_parallel::ParallelCtx;
use tsexplain_relation::{AggFn, AggQuery, AggState, AttrValue, Dictionary, Relation};

use crate::enumerate::enumerate;
use crate::error::CubeError;
use crate::explanation::{ExplId, Explanation};
use crate::trie::{DrillTrie, NodeId, ROOT_NODE};
use crate::values::ValueMatrix;

/// Configuration for building an [`ExplanationCube`].
#[derive(Clone, Debug)]
pub struct CubeConfig {
    /// The explain-by attributes `A` (Definition 3.1); user-specified from
    /// domain knowledge, as in the paper's experiments (§7.1).
    pub explain_by: Vec<String>,
    /// Maximum explanation order β̄ (paper default: 3).
    pub max_order: usize,
    /// The support `filter` ratio (§7.5.1; paper default when enabled:
    /// 0.001). `None` disables filtering (the Vanilla configuration).
    pub filter_ratio: Option<f64>,
    /// Prune redundant conjunctions that select exactly the same rows as
    /// one of their sub-conjunctions (e.g. `category=Tech & stock=AAPL`
    /// when `stock` functionally determines `category`). Keeps ε at the
    /// paper's reported magnitudes for hierarchical explain-by attributes.
    pub prune_redundant: bool,
}

impl CubeConfig {
    /// A configuration explaining by the given attributes with the paper's
    /// defaults (β̄ = 3, no filter).
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(explain_by: I) -> Self {
        CubeConfig {
            explain_by: explain_by.into_iter().map(Into::into).collect(),
            max_order: 3,
            filter_ratio: None,
            prune_redundant: true,
        }
    }

    /// Sets β̄.
    pub fn with_max_order(mut self, max_order: usize) -> Self {
        self.max_order = max_order;
        self
    }

    /// Enables the support filter with `ratio` (paper default 0.001).
    pub fn with_filter_ratio(mut self, ratio: f64) -> Self {
        self.filter_ratio = Some(ratio);
        self
    }

    /// Disables redundant-conjunction pruning (keeps every witnessed
    /// conjunction, including ones equivalent to simpler candidates).
    pub fn without_redundancy_pruning(mut self) -> Self {
        self.prune_redundant = false;
        self
    }

    /// A hashable identity for cubes built from this configuration over the
    /// same data — what a serving session keys its cube cache by.
    ///
    /// Two configurations with equal keys produce identical cubes for the
    /// same relation and query (the float ratio is compared bitwise).
    pub fn cache_key(&self) -> CubeCacheKey {
        CubeCacheKey {
            explain_by: self.explain_by.clone(),
            max_order: self.max_order,
            filter_ratio_bits: self.filter_ratio.map(f64::to_bits),
            prune_redundant: self.prune_redundant,
        }
    }
}

/// The hashable identity of a [`CubeConfig`] (see [`CubeConfig::cache_key`]).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CubeCacheKey {
    explain_by: Vec<String>,
    max_order: usize,
    filter_ratio_bits: Option<u64>,
    prune_redundant: bool,
}

impl CubeCacheKey {
    /// A stable 64-bit digest of the key (FNV-1a over a canonical field
    /// encoding) — usable as an on-disk file name component, unlike the
    /// std `Hash` whose value is unspecified across processes. Distinct
    /// configurations virtually never collide, and a collision only costs
    /// a failed rehydration (the watermark/config check rejects it).
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        for name in &self.explain_by {
            eat(&(name.len() as u64).to_le_bytes());
            eat(name.as_bytes());
        }
        eat(&(self.max_order as u64).to_le_bytes());
        match self.filter_ratio_bits {
            None => eat(&[0]),
            Some(bits) => {
                eat(&[1]);
                eat(&bits.to_le_bytes());
            }
        }
        eat(&[self.prune_redundant as u8]);
        h
    }
}

/// The per-explanation time-series cube (paper §5.2, module a).
///
/// Holds the overall aggregate-state series `ts(R)` and one state series
/// `ts(σ_E R)` per candidate explanation, the drill-down trie for the
/// Cascading Analysts algorithm, and the selectability bitmap produced by
/// the support filter.
#[derive(Clone, Debug)]
pub struct ExplanationCube {
    timestamps: Vec<AttrValue>,
    agg: AggFn,
    total: Vec<AggState>,
    attr_names: Vec<String>,
    dicts: Vec<Dictionary>,
    explanations: Vec<Explanation>,
    series: Vec<Vec<AggState>>,
    /// Time-major pre-decoded values (see [`ValueMatrix`]): the columnar
    /// dual of `series` the scoring hot loops scan. Rebuilt whenever the
    /// states change; every value read goes through it.
    values: ValueMatrix,
    selectable: Vec<bool>,
    /// Per node (explanations, then root in the last slot): whether the
    /// subtree rooted there contains any selectable explanation. Lets the
    /// CA algorithm prune filtered subtrees, which is where the filter's
    /// speedup comes from.
    subtree_selectable: Vec<bool>,
    trie: DrillTrie,
    index: HashMap<Explanation, ExplId>,
}

impl ExplanationCube {
    /// Builds the cube for `query` over `rel` with `config`, using the
    /// process-default parallel context (`TSX_THREADS`; see
    /// [`ExplanationCube::build_with`]).
    pub fn build(rel: &Relation, query: &AggQuery, config: &CubeConfig) -> Result<Self, CubeError> {
        ExplanationCube::build_with(rel, query, config, &ParallelCtx::from_env())
    }

    /// Builds the cube with an explicit parallel context: candidate
    /// enumeration fans the independent attribute subsets across `par`'s
    /// workers with chunk-ordered reduction, so the cube is byte-identical
    /// at any thread count.
    pub fn build_with(
        rel: &Relation,
        query: &AggQuery,
        config: &CubeConfig,
        par: &ParallelCtx,
    ) -> Result<Self, CubeError> {
        if config.explain_by.is_empty() {
            return Err(CubeError::NoExplainBy);
        }
        if config.max_order == 0 {
            return Err(CubeError::ZeroMaxOrder);
        }
        for (i, a) in config.explain_by.iter().enumerate() {
            if a == query.time_attr() {
                return Err(CubeError::TimeAttrInExplainBy(a.clone()));
            }
            if config.explain_by[..i].contains(a) {
                return Err(CubeError::DuplicateExplainBy(a.clone()));
            }
        }
        if rel.is_empty() {
            return Err(CubeError::EmptyInput);
        }

        let time_col = rel.dim_column(query.time_attr())?;
        let n_times = time_col.dict().len();
        let measures = query.measure().eval(rel)?;

        let mut attr_codes: Vec<Vec<u32>> = Vec::with_capacity(config.explain_by.len());
        let mut dicts = Vec::with_capacity(config.explain_by.len());
        for a in &config.explain_by {
            let col = rel.dim_column(a)?;
            attr_codes.push(col.codes().to_vec());
            dicts.push(col.dict().clone());
        }

        let mut total = vec![AggState::ZERO; n_times];
        for (row, &code) in time_col.codes().iter().enumerate() {
            total[code as usize].observe(measures[row]);
        }

        let max_order = config.max_order.min(config.explain_by.len());
        let en = enumerate(
            time_col.codes(),
            n_times,
            &attr_codes,
            &measures,
            max_order,
            par,
        );
        // All-or-nothing: a cancelled fan-out joins with truncated subset
        // blocks — never assemble (or cache) a half-built cube.
        if par.is_cancelled() {
            return Err(CubeError::Cancelled);
        }
        Ok(ExplanationCube::assemble(
            time_col.dict().values().to_vec(),
            query.agg(),
            total,
            config.explain_by.clone(),
            dicts,
            en.explanations,
            en.series,
            None,
            config.filter_ratio,
            config.prune_redundant,
        ))
    }

    /// Finalizes a cube from raw enumeration output: optionally prunes
    /// redundant conjunctions, builds the drill-down trie, the lookup
    /// index and the time-major [`ValueMatrix`], and applies the support
    /// filter. Shared by the batch [`ExplanationCube::build`] path and
    /// [`crate::IncrementalCube`] snapshots, so both produce structurally
    /// identical cubes.
    ///
    /// `values` is an optional pre-decoded matrix maintained incrementally
    /// by the caller; it is reused when (and only when) pruning kept every
    /// candidate, otherwise the matrix is re-decoded from the pruned
    /// series. Decoding is pure, so both paths yield bit-identical values.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        timestamps: Vec<AttrValue>,
        agg: AggFn,
        total: Vec<AggState>,
        attr_names: Vec<String>,
        dicts: Vec<Dictionary>,
        explanations: Vec<Explanation>,
        series: Vec<Vec<AggState>>,
        values: Option<ValueMatrix>,
        filter_ratio: Option<f64>,
        prune: bool,
    ) -> Self {
        let (explanations, series) = if prune {
            prune_redundant(explanations, series)
        } else {
            (explanations, series)
        };
        let values = match values {
            Some(v) if v.n_cols() == explanations.len() && v.n_rows() == timestamps.len() => {
                debug_assert!(
                    {
                        let fresh = ValueMatrix::build(agg, &total, &series);
                        (0..v.n_rows()).all(|t| v.row(t) == fresh.row(t))
                            && v.totals() == fresh.totals()
                    },
                    "incrementally maintained ValueMatrix drifted from the states"
                );
                v
            }
            _ => ValueMatrix::build(agg, &total, &series),
        };
        let trie = DrillTrie::build(&explanations);
        let index = explanations
            .iter()
            .enumerate()
            .map(|(i, e)| (e.clone(), i as ExplId))
            .collect();
        let mut cube = ExplanationCube {
            timestamps,
            agg,
            total,
            attr_names,
            dicts,
            explanations,
            series,
            values,
            selectable: Vec::new(),
            subtree_selectable: Vec::new(),
            trie,
            index,
        };
        cube.apply_filter(filter_ratio);
        cube
    }

    /// A cube restricted to the time window `[lo, hi]` (inclusive point
    /// indices) — cheap cube reuse for time-range-restricted requests.
    ///
    /// The candidate set is inherited from the full horizon (candidates are
    /// *witnessed* conjunctions; a slice never witnesses new ones, and
    /// keeping the full set preserves drill-down structure). The support
    /// filter is re-applied over the sliced series with `filter_ratio`, so
    /// selectability reflects the window.
    pub fn slice_time(
        &self,
        lo: usize,
        hi: usize,
        filter_ratio: Option<f64>,
    ) -> Result<ExplanationCube, CubeError> {
        let n = self.n_points();
        if lo > hi || hi >= n || hi - lo < 1 {
            return Err(CubeError::InvalidTimeSlice { lo, hi, n });
        }
        let mut cube = ExplanationCube {
            timestamps: self.timestamps[lo..=hi].to_vec(),
            agg: self.agg,
            total: self.total[lo..=hi].to_vec(),
            attr_names: self.attr_names.clone(),
            dicts: self.dicts.clone(),
            explanations: self.explanations.clone(),
            series: self.series.iter().map(|s| s[lo..=hi].to_vec()).collect(),
            // Rows are contiguous, so the slice is two memcpys — no
            // re-decoding of the sliced states.
            values: self.values.slice_rows(lo, hi),
            selectable: Vec::new(),
            subtree_selectable: Vec::new(),
            trie: self.trie.clone(),
            index: self.index.clone(),
        };
        cube.apply_filter(filter_ratio);
        Ok(cube)
    }

    /// (Re)applies the support filter, recomputing selectability.
    ///
    /// An explanation is kept when some point of its value series reaches
    /// `ratio` × the overall series' magnitude at that point and is nonzero;
    /// otherwise its contribution is insignificant everywhere (§7.5.1).
    pub fn apply_filter(&mut self, filter_ratio: Option<f64>) {
        let n_expl = self.explanations.len();
        self.selectable = match filter_ratio {
            None => vec![true; n_expl],
            Some(ratio) => (0..n_expl)
                .map(|e| {
                    (0..self.n_points()).any(|t| {
                        let v = self.value_at(e as ExplId, t).abs();
                        v > 0.0 && v >= ratio * self.total_value(t).abs()
                    })
                })
                .collect(),
        };
        // Propagate child → parent so CA can prune dead subtrees. Children
        // always have strictly higher order, so scanning orders high→low
        // sees every child before its parents.
        let mut subtree = self.selectable.clone();
        subtree.push(false); // root slot
        let mut by_order: Vec<ExplId> = (0..n_expl as ExplId).collect();
        by_order.sort_by_key(|&e| std::cmp::Reverse(self.explanations[e as usize].order()));
        let root_slot = n_expl;
        for &e in &by_order {
            if subtree[e as usize] {
                continue;
            }
            let has = self
                .trie
                .children(e)
                .iter()
                .any(|(_, kids)| kids.iter().any(|&k| subtree[k as usize]));
            subtree[e as usize] = has;
        }
        subtree[root_slot] = self
            .trie
            .children(ROOT_NODE)
            .iter()
            .any(|(_, kids)| kids.iter().any(|&k| subtree[k as usize]));
        self.subtree_selectable = subtree;
    }

    /// Approximate heap + inline footprint of this cube in bytes (see
    /// [`crate::mem`]'s module docs) — the unit a byte-budgeted cube cache
    /// accounts and evicts in.
    ///
    /// Deterministic for identical state and monotone in the data: more
    /// points, candidates or dictionary entries never shrink the estimate.
    pub fn approx_bytes(&self) -> usize {
        use crate::mem::*;
        use std::mem::size_of;
        let series: usize = self.series.iter().map(|s| state_series_bytes(s)).sum();
        let index: usize = self
            .index
            .keys() // tsx-lint: allow(map-iter, order-insensitive byte-accounting sum; no emission)
            .map(|e| explanation_bytes(e) + size_of::<ExplId>() + MAP_ENTRY_OVERHEAD)
            .sum();
        size_of::<Self>()
            + attr_values_bytes(&self.timestamps)
            + state_series_bytes(&self.total)
            + self.attr_names.iter().map(String::len).sum::<usize>()
            + self.dicts.iter().map(dictionary_bytes).sum::<usize>()
            + self
                .explanations
                .iter()
                .map(explanation_bytes)
                .sum::<usize>()
            + series
            + self.values.approx_bytes()
            + self.selectable.len()
            + self.subtree_selectable.len()
            + trie_bytes(&self.trie)
            + index
    }

    /// Number of points `n` in the aggregated time series.
    pub fn n_points(&self) -> usize {
        self.timestamps.len()
    }

    /// Total number of candidate explanations ε (Table 6, column ε).
    pub fn n_candidates(&self) -> usize {
        self.explanations.len()
    }

    /// Number of candidates surviving the support filter (Table 6,
    /// column "filtered ε").
    pub fn n_selectable(&self) -> usize {
        self.selectable.iter().filter(|&&s| s).count()
    }

    /// The sorted timestamps of the series.
    pub fn timestamps(&self) -> &[AttrValue] {
        &self.timestamps
    }

    /// The aggregate function of the underlying query.
    pub fn agg(&self) -> AggFn {
        self.agg
    }

    /// The overall aggregate state at time index `t`.
    pub fn total_state(&self, t: usize) -> AggState {
        self.total[t]
    }

    /// The overall aggregate value at time index `t` (pre-decoded).
    pub fn total_value(&self, t: usize) -> f64 {
        self.values.total(t)
    }

    /// The whole overall value series as an owned vector. Warm paths that
    /// only need to *read* the series should prefer the allocation-free
    /// [`ExplanationCube::total_values_slice`].
    pub fn total_values(&self) -> Vec<f64> {
        self.values.totals().to_vec()
    }

    /// The whole overall value series, borrowed from the pre-decoded
    /// matrix — no per-call allocation.
    pub fn total_values_slice(&self) -> &[f64] {
        self.values.totals()
    }

    /// The time-major pre-decoded value matrix (see [`ValueMatrix`]) — the
    /// storage batched scorers scan row-wise.
    pub fn values(&self) -> &ValueMatrix {
        &self.values
    }

    /// Explanation `e`'s aggregate state at time index `t`.
    pub fn state(&self, e: ExplId, t: usize) -> AggState {
        self.series[e as usize][t]
    }

    /// Explanation `e`'s aggregate value at time index `t` (pre-decoded;
    /// bit-identical to `state(e, t).value(agg)`).
    pub fn value_at(&self, e: ExplId, t: usize) -> f64 {
        self.values.get(t, e as usize)
    }

    /// Explanation `e`'s whole value series, gathered into `out` (cleared
    /// first) — the reusable-buffer variant of
    /// [`ExplanationCube::value_series`].
    pub fn value_series_into(&self, e: ExplId, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.n_points()).map(|t| self.value_at(e, t)));
    }

    /// Explanation `e`'s whole value series.
    pub fn value_series(&self, e: ExplId) -> Vec<f64> {
        (0..self.n_points()).map(|t| self.value_at(e, t)).collect()
    }

    /// The candidate explanation behind `e`.
    pub fn explanation(&self, e: ExplId) -> &Explanation {
        &self.explanations[e as usize]
    }

    /// All candidate explanations.
    pub fn explanations(&self) -> &[Explanation] {
        &self.explanations
    }

    /// Human-readable label of `e` (`"state=NY"`, `"BV=1750 & P=6"`, …).
    pub fn label(&self, e: ExplId) -> String {
        self.explanations[e as usize].describe(&self.attr_names, &self.dicts)
    }

    /// Explain-by attribute names, in cube attribute-index order.
    pub fn attr_names(&self) -> &[String] {
        &self.attr_names
    }

    /// The dictionaries of the explain-by attributes.
    pub fn dicts(&self) -> &[Dictionary] {
        &self.dicts
    }

    /// The drill-down trie.
    pub fn trie(&self) -> &DrillTrie {
        &self.trie
    }

    /// The id of an explanation by structural equality, if enumerated.
    pub fn lookup(&self, e: &Explanation) -> Option<ExplId> {
        self.index.get(e).copied()
    }

    /// Whether explanation `e` survived the support filter.
    pub fn is_selectable(&self, e: ExplId) -> bool {
        self.selectable[e as usize]
    }

    /// The support-filter bitmap over all candidates — what batched
    /// scorers use to mask their scans.
    pub fn selectable_mask(&self) -> &[bool] {
        &self.selectable
    }

    /// The id of an explanation given its sorted `(attr, code)` predicate
    /// pairs — the allocation-free twin of [`ExplanationCube::lookup`]
    /// for callers that assemble candidate predicates in a scratch buffer.
    pub fn lookup_preds(&self, preds: &[(u16, u32)]) -> Option<ExplId> {
        debug_assert!(preds.windows(2).all(|w| w[0].0 < w[1].0));
        self.index.get(preds).copied()
    }

    /// Whether any explanation in the subtree under `node` is selectable.
    pub fn subtree_selectable(&self, node: NodeId) -> bool {
        if node == ROOT_NODE {
            self.subtree_selectable[self.explanations.len()]
        } else {
            self.subtree_selectable[node as usize]
        }
    }

    /// Ids of all selectable explanations.
    pub fn selectable_ids(&self) -> Vec<ExplId> {
        (0..self.explanations.len() as ExplId)
            .filter(|&e| self.selectable[e as usize])
            .collect()
    }

    /// Smooths the overall and per-explanation series with a centered
    /// moving average of `window` points (clamped at the boundaries).
    ///
    /// The paper applies a moving average to "very fuzzy" datasets before
    /// explaining them (§7.4); smoothing the decomposable states keeps
    /// every downstream γ computation consistent with the smoothed view.
    /// `window <= 1` is a no-op.
    pub fn smooth_moving_average(&mut self, window: usize) {
        if window <= 1 {
            return;
        }
        let half = window / 2;
        let smooth_series = |s: &[AggState]| -> Vec<AggState> {
            let n = s.len();
            (0..n)
                .map(|t| {
                    let lo = t.saturating_sub(half);
                    let hi = (t + half).min(n - 1);
                    let mut acc = AggState::ZERO;
                    for x in &s[lo..=hi] {
                        acc += *x;
                    }
                    let k = (hi - lo + 1) as f64;
                    AggState {
                        count: acc.count / k,
                        sum: acc.sum / k,
                        sumsq: acc.sumsq / k,
                    }
                })
                .collect()
        };
        self.total = smooth_series(&self.total);
        for s in &mut self.series {
            *s = smooth_series(s);
        }
        // The states changed; re-decode the columnar view.
        self.values = ValueMatrix::build(self.agg, &self.total, &self.series);
    }
}

/// Drops conjunctions whose row set equals one of their sub-conjunctions'.
///
/// A conjunction `F` is redundant iff some immediate parent `F \ {a}` has
/// the same total support: `σ_F R ⊆ σ_{F∖a} R` always, so equal row counts
/// imply equal row sets. Redundancy is downward-closed (adding predicates
/// to a redundant conjunction keeps it redundant), so checking immediate
/// parents is sufficient and the kept set always contains every kept
/// explanation's drill-down parents.
fn prune_redundant(
    explanations: Vec<Explanation>,
    series: Vec<Vec<AggState>>,
) -> (Vec<Explanation>, Vec<Vec<AggState>>) {
    let index: HashMap<&Explanation, usize> = explanations
        .iter()
        .enumerate()
        .map(|(i, e)| (e, i))
        .collect();
    let support: Vec<f64> = series
        .iter()
        .map(|s| s.iter().map(|st| st.count).sum())
        .collect();
    let keep: Vec<bool> = explanations
        .iter()
        .enumerate()
        .map(|(i, e)| {
            if e.order() < 2 {
                return true;
            }
            !e.preds().iter().any(|&(attr, _)| {
                let parent = e.without(attr).expect("attr constrained");
                index
                    .get(&parent)
                    .is_some_and(|&p| support[p] == support[i])
            })
        })
        .collect();
    if keep.iter().all(|&k| k) {
        // Nothing pruned: hand the vectors back untouched so callers that
        // maintain derived structures (the incremental value matrix) can
        // reuse them.
        return (explanations, series);
    }
    let mut kept_expl = Vec::with_capacity(keep.iter().filter(|&&k| k).count());
    let mut kept_series = Vec::with_capacity(kept_expl.capacity());
    for ((e, s), k) in explanations.into_iter().zip(series).zip(keep) {
        if k {
            kept_expl.push(e);
            kept_series.push(s);
        }
    }
    (kept_expl, kept_series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsexplain_relation::{Datum, Field, Schema};

    /// date × state × pack with COUNT aggregation.
    fn sample_relation() -> Relation {
        let schema = Schema::new(vec![
            Field::dimension("date"),
            Field::dimension("state"),
            Field::dimension("pack"),
            Field::measure("sold"),
        ])
        .unwrap();
        let mut b = Relation::builder(schema);
        let rows: &[(&str, &str, i64, f64)] = &[
            ("d1", "NY", 6, 1.0),
            ("d1", "NY", 12, 2.0),
            ("d1", "CA", 6, 3.0),
            ("d2", "NY", 6, 4.0),
            ("d2", "CA", 12, 5.0),
            ("d3", "CA", 12, 6.0),
        ];
        for &(d, s, p, v) in rows {
            b.push_row(vec![
                Datum::from(d),
                Datum::from(s),
                Datum::from(p),
                Datum::from(v),
            ])
            .unwrap();
        }
        b.finish()
    }

    fn sample_cube(config: CubeConfig) -> ExplanationCube {
        let rel = sample_relation();
        let query = AggQuery::sum("date", "sold");
        ExplanationCube::build(&rel, &query, &config).unwrap()
    }

    #[test]
    fn totals_match_group_by() {
        let cube = sample_cube(CubeConfig::new(["state", "pack"]));
        assert_eq!(cube.n_points(), 3);
        assert_eq!(cube.total_values(), vec![6.0, 9.0, 6.0]);
    }

    #[test]
    fn candidate_counts() {
        let cube = sample_cube(CubeConfig::new(["state", "pack"]));
        // Order 1: state∈{NY,CA} (2) + pack∈{6,12} (2) = 4.
        // Order 2 witnessed: (NY,6), (NY,12), (CA,6), (CA,12) = 4.
        assert_eq!(cube.n_candidates(), 8);
        assert_eq!(cube.n_selectable(), 8);
    }

    #[test]
    fn slice_series_match_manual_selection() {
        let cube = sample_cube(CubeConfig::new(["state", "pack"]));
        let ny = (0..cube.n_candidates() as ExplId)
            .find(|&e| cube.label(e) == "state=NY")
            .unwrap();
        assert_eq!(cube.value_series(ny), vec![3.0, 4.0, 0.0]);
        let ca12 = (0..cube.n_candidates() as ExplId)
            .find(|&e| cube.label(e) == "state=CA & pack=12")
            .unwrap();
        assert_eq!(cube.value_series(ca12), vec![0.0, 5.0, 6.0]);
    }

    #[test]
    fn slices_sum_to_total_per_attribute() {
        let cube = sample_cube(CubeConfig::new(["state", "pack"]));
        for t in 0..cube.n_points() {
            let sum: f64 = (0..cube.n_candidates() as ExplId)
                .filter(|&e| cube.explanation(e).order() == 1 && cube.explanation(e).constrains(0))
                .map(|e| cube.value_at(e, t))
                .sum();
            assert!((sum - cube.total_value(t)).abs() < 1e-9);
        }
    }

    #[test]
    fn max_order_respected() {
        let cube = sample_cube(CubeConfig::new(["state", "pack"]).with_max_order(1));
        assert!(cube.explanations().iter().all(|e| e.order() == 1));
    }

    #[test]
    fn filter_marks_small_slices() {
        // `pack=6, state=CA` only contributes 3.0/6.0 on d1; with a huge
        // ratio nothing survives, with a tiny ratio everything does.
        let mut cube = sample_cube(CubeConfig::new(["state", "pack"]));
        cube.apply_filter(Some(10.0));
        assert_eq!(cube.n_selectable(), 0);
        assert!(!cube.subtree_selectable(ROOT_NODE));
        cube.apply_filter(Some(1e-9));
        assert_eq!(cube.n_selectable(), cube.n_candidates());
        assert!(cube.subtree_selectable(ROOT_NODE));
    }

    #[test]
    fn filter_ratio_thresholds_point_share() {
        let mut cube = sample_cube(CubeConfig::new(["state", "pack"]));
        // state=NY reaches 3/6 = 50% on d1; 0.4 keeps it, 0.9 does not
        // (its best share is 4/9 on d2... actually 3/6=0.5) — check both.
        cube.apply_filter(Some(0.4));
        let ny = (0..cube.n_candidates() as ExplId)
            .find(|&e| cube.label(e) == "state=NY")
            .unwrap();
        assert!(cube.is_selectable(ny));
        cube.apply_filter(Some(0.9));
        assert!(!cube.is_selectable(ny));
    }

    #[test]
    fn subtree_selectability_keeps_structural_parents() {
        let mut cube = sample_cube(CubeConfig::new(["state", "pack"]));
        // Filter so only the largest order-2 slice (CA & 12: 5,6) survives…
        cube.apply_filter(Some(0.55));
        let ca12 = (0..cube.n_candidates() as ExplId)
            .find(|&e| cube.label(e) == "state=CA & pack=12")
            .unwrap();
        assert!(cube.is_selectable(ca12));
        // …then its parents must still be drillable-through.
        let ca = (0..cube.n_candidates() as ExplId)
            .find(|&e| cube.label(e) == "state=CA")
            .unwrap();
        assert!(cube.subtree_selectable(ca));
    }

    #[test]
    fn redundant_conjunctions_pruned_for_hierarchies() {
        // "industry" functionally determines "sector": sector=S & industry=I
        // selects the same rows as industry=I and must be pruned.
        let schema = Schema::new(vec![
            Field::dimension("d"),
            Field::dimension("sector"),
            Field::dimension("industry"),
            Field::measure("v"),
        ])
        .unwrap();
        let mut b = Relation::builder(schema);
        for (d, s, i, v) in [
            ("d1", "Tech", "Software", 1.0),
            ("d1", "Tech", "Hardware", 2.0),
            ("d1", "Energy", "Oil", 3.0),
            ("d2", "Tech", "Software", 4.0),
            ("d2", "Energy", "Oil", 5.0),
        ] {
            b.push_row(vec![
                Datum::from(d),
                Datum::from(s),
                Datum::from(i),
                Datum::from(v),
            ])
            .unwrap();
        }
        let rel = b.finish();
        let query = AggQuery::sum("d", "v");
        let pruned =
            ExplanationCube::build(&rel, &query, &CubeConfig::new(["sector", "industry"])).unwrap();
        let full = ExplanationCube::build(
            &rel,
            &query,
            &CubeConfig::new(["sector", "industry"]).without_redundancy_pruning(),
        )
        .unwrap();
        // Order-1: 2 sectors + 3 industries = 5. Pairs are all redundant.
        assert_eq!(pruned.n_candidates(), 5);
        assert_eq!(full.n_candidates(), 8);
        assert!(pruned.explanations().iter().all(|e| e.order() == 1));
    }

    #[test]
    fn pruning_keeps_informative_conjunctions() {
        let cube = sample_cube(CubeConfig::new(["state", "pack"]));
        // state × pack combinations genuinely refine both parents here.
        assert_eq!(cube.n_candidates(), 8);
    }

    #[test]
    fn validation_errors() {
        let rel = sample_relation();
        let query = AggQuery::sum("date", "sold");
        let err = ExplanationCube::build(&rel, &query, &CubeConfig::new(Vec::<String>::new()))
            .unwrap_err();
        assert_eq!(err, CubeError::NoExplainBy);
        let err = ExplanationCube::build(&rel, &query, &CubeConfig::new(["date"])).unwrap_err();
        assert_eq!(err, CubeError::TimeAttrInExplainBy("date".into()));
        let err =
            ExplanationCube::build(&rel, &query, &CubeConfig::new(["state", "state"])).unwrap_err();
        assert_eq!(err, CubeError::DuplicateExplainBy("state".into()));
        let err =
            ExplanationCube::build(&rel, &query, &CubeConfig::new(["state"]).with_max_order(0))
                .unwrap_err();
        assert_eq!(err, CubeError::ZeroMaxOrder);
    }

    #[test]
    fn smoothing_averages_neighbors() {
        let mut cube = sample_cube(CubeConfig::new(["state"]));
        let before = cube.total_values();
        cube.smooth_moving_average(3);
        let after = cube.total_values();
        // Middle point becomes the mean of all three.
        assert!((after[1] - (before[0] + before[1] + before[2]) / 3.0).abs() < 1e-9);
        // Boundary points average the available window.
        assert!((after[0] - (before[0] + before[1]) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn slice_time_restricts_series_and_reapplies_filter() {
        let cube = sample_cube(CubeConfig::new(["state", "pack"]));
        let sliced = cube.slice_time(1, 2, None).unwrap();
        assert_eq!(sliced.n_points(), 2);
        assert_eq!(sliced.total_values(), vec![9.0, 6.0]);
        assert_eq!(sliced.n_candidates(), cube.n_candidates());
        assert_eq!(sliced.timestamps()[0], cube.timestamps()[1]);
        // state=NY only contributes on d1/d2 (4.0 on d2): a harsh filter
        // over the slice drops more candidates than over the full series.
        let harsh = cube.slice_time(1, 2, Some(0.9)).unwrap();
        assert!(harsh.n_selectable() < cube.n_candidates());
        // Labels survive slicing.
        let ny = (0..sliced.n_candidates() as ExplId)
            .find(|&e| sliced.label(e) == "state=NY")
            .unwrap();
        assert_eq!(sliced.value_series(ny), vec![4.0, 0.0]);
    }

    #[test]
    fn slice_time_rejects_degenerate_windows() {
        let cube = sample_cube(CubeConfig::new(["state"]));
        assert!(matches!(
            cube.slice_time(2, 1, None),
            Err(CubeError::InvalidTimeSlice { .. })
        ));
        assert!(matches!(
            cube.slice_time(1, 1, None),
            Err(CubeError::InvalidTimeSlice { .. })
        ));
        assert!(matches!(
            cube.slice_time(0, 3, None),
            Err(CubeError::InvalidTimeSlice { .. })
        ));
        assert!(cube.slice_time(0, 2, None).is_ok());
    }

    #[test]
    fn cache_keys_compare_bitwise() {
        let a = CubeConfig::new(["state"]).with_filter_ratio(0.001);
        let b = CubeConfig::new(["state"]).with_filter_ratio(0.001);
        let c = CubeConfig::new(["state"]).with_filter_ratio(0.002);
        let d = CubeConfig::new(["state", "pack"]).with_filter_ratio(0.001);
        assert_eq!(a.cache_key(), b.cache_key());
        assert_ne!(a.cache_key(), c.cache_key());
        assert_ne!(a.cache_key(), d.cache_key());
        assert_ne!(a.cache_key(), CubeConfig::new(["state"]).cache_key());
        assert_ne!(
            a.cache_key(),
            CubeConfig::new(["state"])
                .with_filter_ratio(0.001)
                .with_max_order(1)
                .cache_key()
        );
    }

    #[test]
    fn approx_bytes_is_positive_stable_and_monotone() {
        let cube = sample_cube(CubeConfig::new(["state", "pack"]));
        let bytes = cube.approx_bytes();
        assert!(bytes > 0);
        // Stable: identical state gives an identical estimate.
        assert_eq!(
            bytes,
            sample_cube(CubeConfig::new(["state", "pack"])).approx_bytes()
        );
        // Monotone: a lower-order cube over the same data holds fewer
        // candidates and must not cost more.
        let smaller = sample_cube(CubeConfig::new(["state", "pack"]).with_max_order(1));
        assert!(smaller.approx_bytes() < bytes);
        // A time slice drops points and must not cost more.
        let sliced = cube.slice_time(0, 1, None).unwrap();
        assert!(sliced.approx_bytes() < bytes);
    }

    #[test]
    fn smoothing_window_one_is_noop() {
        let mut cube = sample_cube(CubeConfig::new(["state"]));
        let before = cube.total_values();
        cube.smooth_moving_average(1);
        assert_eq!(before, cube.total_values());
    }
}
