//! Approximate byte-size accounting for cubes.
//!
//! A serving session caches prepared cubes; a multi-tenant registry caches
//! whole sessions. Neither can bound its footprint without knowing what a
//! cube costs, so both [`crate::ExplanationCube`] and
//! [`crate::IncrementalCube`] expose `approx_bytes`: a deterministic,
//! allocation-free estimate of heap + inline size built from the same
//! handful of helpers.
//!
//! The estimate is intentionally approximate — it counts the dominant
//! payloads (per-explanation state series, dictionaries, tries, hash
//! indexes) with flat per-entry overheads for hash-map bookkeeping rather
//! than chasing allocator metadata. What matters for an eviction policy is
//! that the estimate is (a) monotone in the data (more rows, points or
//! candidates never shrink it) and (b) stable for identical state, so
//! LRU-by-bytes decisions are reproducible.

use std::mem::size_of;

use tsexplain_relation::{AggState, AttrValue, Dictionary};

use crate::explanation::Explanation;
use crate::trie::DrillTrie;

/// Flat overhead charged per hash-map entry (bucket slot, control bytes,
/// padding) on top of the key/value payloads.
pub(crate) const MAP_ENTRY_OVERHEAD: usize = 16;

/// Approximate heap + inline size of one attribute value.
pub(crate) fn attr_value_bytes(value: &AttrValue) -> usize {
    size_of::<AttrValue>()
        + match value {
            AttrValue::Int(_) => 0,
            // Arc<str>: the string payload plus the two reference counts.
            AttrValue::Str(s) => s.len() + 2 * size_of::<usize>(),
        }
}

/// Approximate size of a slice of attribute values (e.g. a time axis).
pub(crate) fn attr_values_bytes(values: &[AttrValue]) -> usize {
    values.iter().map(attr_value_bytes).sum()
}

/// Approximate size of a dictionary: sorted values plus the value→code
/// index (which clones every value as a key).
pub(crate) fn dictionary_bytes(dict: &Dictionary) -> usize {
    dict.values()
        .iter()
        .map(|v| 2 * attr_value_bytes(v) + size_of::<u32>() + MAP_ENTRY_OVERHEAD)
        .sum()
}

/// Approximate size of one explanation (its predicate vector).
pub(crate) fn explanation_bytes(e: &Explanation) -> usize {
    size_of::<Explanation>() + std::mem::size_of_val(e.preds())
}

/// Approximate size of a per-explanation (or total) aggregate-state series.
pub(crate) fn state_series_bytes(series: &[AggState]) -> usize {
    size_of::<Vec<AggState>>() + std::mem::size_of_val(series)
}

/// Approximate size of the drill-down trie: per node a group vector, per
/// edge an id.
pub(crate) fn trie_bytes(trie: &DrillTrie) -> usize {
    let nodes = trie.n_explanations() + 1;
    nodes * size_of::<Vec<(u16, Vec<u32>)>>() + trie.n_edges() * (size_of::<u32>() + 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_values_cost_more_than_ints() {
        let int = AttrValue::from(42);
        let short = AttrValue::from("NY");
        let long = AttrValue::from("a much longer dimension member value");
        assert!(attr_value_bytes(&int) < attr_value_bytes(&short));
        assert!(attr_value_bytes(&short) < attr_value_bytes(&long));
    }

    #[test]
    fn dictionary_bytes_grow_with_cardinality() {
        let small = Dictionary::from_values((0..4).map(AttrValue::from));
        let large = Dictionary::from_values((0..64).map(AttrValue::from));
        assert!(dictionary_bytes(&small) < dictionary_bytes(&large));
    }

    #[test]
    fn state_series_bytes_are_linear_in_points() {
        let short = vec![AggState::ZERO; 10];
        let long = vec![AggState::ZERO; 1000];
        let a = state_series_bytes(&short);
        let b = state_series_bytes(&long);
        assert!(b > a);
        assert_eq!(b - a, 990 * size_of::<AggState>());
    }
}
