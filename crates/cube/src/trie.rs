use std::collections::HashMap;

use crate::explanation::{ExplId, Explanation};

/// A node of the drill-down trie: either a concrete explanation or the
/// virtual root (the unconstrained data slice).
pub type NodeId = u32;

/// The virtual root node (order-0 "TRUE" explanation).
pub const ROOT_NODE: NodeId = u32::MAX;

/// The drill-down trie over candidate explanations (paper Fig. 8).
///
/// `children(node)` yields, per attribute not constrained by `node`, the
/// explanations that refine `node` with one predicate on that attribute.
/// The Cascading Analysts algorithm walks this structure: at each node it
/// either takes the node as an explanation or picks **one** attribute to
/// drill into and distributes its quota among that attribute's children —
/// which is exactly what keeps the selected explanations non-overlapping.
#[derive(Clone, Debug)]
pub struct DrillTrie {
    /// `groups[slot]` lists `(attr, children)` pairs, sorted by attr.
    /// Slot `n_expl` is the root.
    groups: Vec<Vec<(u16, Vec<ExplId>)>>,
    n_expl: usize,
}

impl DrillTrie {
    /// Builds the trie for a candidate set.
    ///
    /// Every order-β explanation is attached, for each of its β attributes,
    /// under its order-(β−1) parent along that attribute. Parents always
    /// exist: an explanation is only enumerated when witnessed by a row, and
    /// any row witnessing a child also witnesses all of its ancestors.
    pub fn build(explanations: &[Explanation]) -> Self {
        let n_expl = explanations.len();
        let index: HashMap<&Explanation, ExplId> = explanations
            .iter()
            .enumerate()
            .map(|(i, e)| (e, i as ExplId))
            .collect();
        let mut groups: Vec<Vec<(u16, Vec<ExplId>)>> = vec![Vec::new(); n_expl + 1];
        for (id, e) in explanations.iter().enumerate() {
            for &(attr, _) in e.preds() {
                let slot = match e.without(attr) {
                    Some(parent) if parent.order() > 0 => {
                        let pid = *index
                            .get(&parent)
                            .expect("drill-down parent must be enumerated");
                        pid as usize
                    }
                    _ => n_expl, // order-1 explanations hang off the root
                };
                let group = &mut groups[slot];
                match group.binary_search_by_key(&attr, |g| g.0) {
                    Ok(pos) => group[pos].1.push(id as ExplId),
                    Err(pos) => group.insert(pos, (attr, vec![id as ExplId])),
                }
            }
        }
        DrillTrie { groups, n_expl }
    }

    fn slot(&self, node: NodeId) -> usize {
        if node == ROOT_NODE {
            self.n_expl
        } else {
            node as usize
        }
    }

    /// The drill-down groups of `node`: one `(attr, children)` entry per
    /// attribute that has at least one refinement, sorted by attr.
    pub fn children(&self, node: NodeId) -> &[(u16, Vec<ExplId>)] {
        &self.groups[self.slot(node)]
    }

    /// True when `node` has no refinements (a leaf of the trie).
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.children(node).is_empty()
    }

    /// Number of concrete explanations the trie is built over.
    pub fn n_explanations(&self) -> usize {
        self.n_expl
    }

    /// Total number of `(parent, child)` edges, counting one edge per
    /// (parent, attr, child) triple.
    pub fn n_edges(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.iter().map(|(_, c)| c.len()).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Candidates over two attributes A0 ∈ {0,1}, A1 ∈ {0,1}, all orders.
    fn two_attr_candidates() -> Vec<Explanation> {
        let mut v = Vec::new();
        for c in 0..2 {
            v.push(Explanation::new(vec![(0, c)]));
        }
        for c in 0..2 {
            v.push(Explanation::new(vec![(1, c)]));
        }
        for c0 in 0..2 {
            for c1 in 0..2 {
                v.push(Explanation::new(vec![(0, c0), (1, c1)]));
            }
        }
        v
    }

    #[test]
    fn root_children_grouped_by_attr() {
        let cands = two_attr_candidates();
        let trie = DrillTrie::build(&cands);
        let groups = trie.children(ROOT_NODE);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, 0);
        assert_eq!(groups[0].1.len(), 2);
        assert_eq!(groups[1].0, 1);
        assert_eq!(groups[1].1.len(), 2);
    }

    #[test]
    fn order2_nodes_attach_under_both_parents() {
        let cands = two_attr_candidates();
        let trie = DrillTrie::build(&cands);
        // (A0=0) is id 0; its children along attr 1 are (A0=0 & A1=*).
        let groups = trie.children(0);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].0, 1);
        let kids: Vec<_> = groups[0].1.iter().map(|&k| &cands[k as usize]).collect();
        assert!(kids.iter().all(|e| e.code_for(0) == Some(0)));
        assert_eq!(kids.len(), 2);
        // (A1=0) is id 2; children along attr 0.
        let groups = trie.children(2);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].0, 0);
        assert_eq!(groups[0].1.len(), 2);
    }

    #[test]
    fn leaves_have_no_children() {
        let cands = two_attr_candidates();
        let trie = DrillTrie::build(&cands);
        // Order-2 explanations are leaves here.
        for (id, e) in cands.iter().enumerate() {
            assert_eq!(trie.is_leaf(id as NodeId), e.order() == 2);
        }
    }

    #[test]
    fn edge_count_matches_order_sum() {
        let cands = two_attr_candidates();
        let trie = DrillTrie::build(&cands);
        let expected: usize = cands.iter().map(|e| e.order()).sum();
        assert_eq!(trie.n_edges(), expected);
    }
}
