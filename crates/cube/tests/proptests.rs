//! Property-based tests for the explanation cube: slice/total consistency,
//! trie structural invariants, filter monotonicity and overlap semantics.

use proptest::prelude::*;
use tsexplain_cube::{CubeConfig, ExplId, ExplanationCube, ROOT_NODE};
use tsexplain_relation::{AggQuery, Datum, Field, Relation, Schema};

fn rows_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8, f64)>> {
    proptest::collection::vec((0u8..5, 0u8..3, 0u8..3, 0.1f64..100.0), 5..80)
}

fn build_cube(
    rows: &[(u8, u8, u8, f64)],
    max_order: usize,
    filter: Option<f64>,
) -> ExplanationCube {
    let schema = Schema::new(vec![
        Field::dimension("t"),
        Field::dimension("a"),
        Field::dimension("b"),
        Field::measure("v"),
    ])
    .unwrap();
    let mut builder = Relation::builder(schema);
    for &(t, a, b, v) in rows {
        builder
            .push_row(vec![
                Datum::Attr((t as i64).into()),
                Datum::Attr((a as i64).into()),
                Datum::Attr((b as i64).into()),
                Datum::from(v),
            ])
            .unwrap();
    }
    let mut config = CubeConfig::new(["a", "b"])
        .with_max_order(max_order)
        .without_redundancy_pruning();
    config.filter_ratio = filter;
    ExplanationCube::build(&builder.finish(), &AggQuery::sum("t", "v"), &config).unwrap()
}

proptest! {
    /// Order-1 slices of one attribute sum to the total at every point.
    #[test]
    fn order1_slices_partition_total(rows in rows_strategy()) {
        let cube = build_cube(&rows, 2, None);
        for attr in 0..2u16 {
            for t in 0..cube.n_points() {
                let sum: f64 = (0..cube.n_candidates() as ExplId)
                    .filter(|&e| {
                        let expl = cube.explanation(e);
                        expl.order() == 1 && expl.constrains(attr)
                    })
                    .map(|e| cube.value_at(e, t))
                    .sum();
                prop_assert!((sum - cube.total_value(t)).abs() < 1e-6,
                    "attr {attr} t {t}: {sum} vs {}", cube.total_value(t));
            }
        }
    }

    /// Every trie child refines its parent by exactly the grouping attr.
    #[test]
    fn trie_children_refine_parents(rows in rows_strategy()) {
        let cube = build_cube(&rows, 2, None);
        let trie = cube.trie();
        // Root children are order-1 on the group's attr.
        for (attr, kids) in trie.children(ROOT_NODE) {
            for &kid in kids {
                let e = cube.explanation(kid);
                prop_assert_eq!(e.order(), 1);
                prop_assert!(e.constrains(*attr));
            }
        }
        for parent in 0..cube.n_candidates() as ExplId {
            for (attr, kids) in trie.children(parent) {
                let p = cube.explanation(parent);
                prop_assert!(!p.constrains(*attr));
                for &kid in kids {
                    let k = cube.explanation(kid);
                    prop_assert_eq!(k.order(), p.order() + 1);
                    prop_assert_eq!(&k.without(*attr).unwrap(), p);
                }
            }
        }
    }

    /// Raising the filter ratio can only shrink the selectable set.
    #[test]
    fn filter_is_monotone(rows in rows_strategy(), r1 in 0.0001f64..0.2, r2 in 0.0001f64..0.2) {
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let mut cube = build_cube(&rows, 2, None);
        cube.apply_filter(Some(lo));
        let selectable_lo = cube.n_selectable();
        cube.apply_filter(Some(hi));
        let selectable_hi = cube.n_selectable();
        prop_assert!(selectable_hi <= selectable_lo);
        prop_assert!(selectable_lo <= cube.n_candidates());
    }

    /// `overlaps` agrees with actual row-set intersection.
    #[test]
    fn overlap_matches_row_semantics(rows in rows_strategy()) {
        let cube = build_cube(&rows, 2, None);
        let n = cube.n_candidates().min(12) as ExplId;
        for e1 in 0..n {
            for e2 in 0..n {
                let x1 = cube.explanation(e1);
                let x2 = cube.explanation(e2);
                // Count rows matching both conjunctions.
                let both = rows.iter().filter(|&&(_, a, b, _)| {
                    let matches = |e: &tsexplain_cube::Explanation| {
                        e.preds().iter().all(|&(attr, code)| {
                            let dict = &cube.dicts()[attr as usize];
                            let val = if attr == 0 { a } else { b } as i64;
                            dict.code_of(&val.into()) == Some(code)
                        })
                    };
                    matches(x1) && matches(x2)
                }).count();
                if both > 0 {
                    prop_assert!(x1.overlaps(x2),
                        "{} and {} share {both} rows but report non-overlapping",
                        cube.label(e1), cube.label(e2));
                }
            }
        }
    }

    /// Smoothing preserves the series mean (up to boundary effects) and
    /// never changes the number of points.
    #[test]
    fn smoothing_preserves_shape(rows in rows_strategy(), window in 1usize..6) {
        let mut cube = build_cube(&rows, 1, None);
        let n = cube.n_points();
        let before: f64 = cube.total_values().iter().sum();
        cube.smooth_moving_average(window);
        prop_assert_eq!(cube.n_points(), n);
        let after: f64 = cube.total_values().iter().sum();
        // Centered MA with boundary clamping keeps totals in the same band.
        prop_assert!(after.abs() <= before.abs() * 2.0 + 1e-6);
    }
}
