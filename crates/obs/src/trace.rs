//! Span-based request tracing with an ambient, thread-local collector.
//!
//! The server [`begin`]s a trace before dispatching a request and
//! [`finish`]es it after; any code on that thread — the session's cube
//! acquire, the pipeline's cascading/segmentation stages — calls
//! [`span`] to record a timed, nested span. When no trace is installed
//! (unit tests, worker pool threads inside a parallel fan-out) the guard
//! is a no-op, so instrumented code needs no plumbing and pays one
//! thread-local check.
//!
//! Tracing is observational only: spans never feed back into the
//! computation, so traced and untraced runs produce byte-identical
//! results. Parallel fan-out workers run without a collector — the
//! calling thread records the fan-out as one span — which keeps the
//! recorded tree deterministic in shape regardless of thread count.

use std::cell::RefCell;
use std::time::Instant;

use serde::Value;

struct SpanRecord {
    name: &'static str,
    parent: Option<usize>,
    start_nanos: u64,
    end_nanos: u64,
}

struct TraceState {
    start: Instant,
    spans: Vec<SpanRecord>,
    stack: Vec<usize>,
    annotations: Vec<(String, Value)>,
}

thread_local! {
    static ACTIVE: RefCell<Option<TraceState>> = const { RefCell::new(None) };
}

/// Installs a fresh trace collector on this thread, replacing any
/// previous one.
pub fn begin() {
    ACTIVE.with(|cell| {
        *cell.borrow_mut() = Some(TraceState {
            start: Instant::now(),
            spans: Vec::new(),
            stack: Vec::new(),
            annotations: Vec::new(),
        });
    });
}

/// Whether a trace is collecting on this thread.
pub fn is_active() -> bool {
    ACTIVE.with(|cell| cell.borrow().is_some())
}

/// Attaches a named JSON annotation to the active trace (no-op without
/// one). Later annotations with the same key win.
pub fn annotate(key: &str, value: Value) {
    ACTIVE.with(|cell| {
        if let Some(state) = cell.borrow_mut().as_mut() {
            state.annotations.retain(|(k, _)| k != key);
            state.annotations.push((key.to_string(), value));
        }
    });
}

/// Opens a span that closes when the returned guard drops.
pub fn span(name: &'static str) -> SpanGuard {
    let index = ACTIVE.with(|cell| {
        let mut borrow = cell.borrow_mut();
        let state = borrow.as_mut()?;
        let start_nanos = state.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let parent = state.stack.last().copied();
        state.spans.push(SpanRecord {
            name,
            parent,
            start_nanos,
            end_nanos: start_nanos,
        });
        let index = state.spans.len() - 1;
        state.stack.push(index);
        Some(index)
    });
    SpanGuard { index }
}

/// Closes its span on drop (including during a panic unwind).
pub struct SpanGuard {
    index: Option<usize>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(index) = self.index else { return };
        ACTIVE.with(|cell| {
            if let Some(state) = cell.borrow_mut().as_mut() {
                let end_nanos = state.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                if let Some(record) = state.spans.get_mut(index) {
                    record.end_nanos = end_nanos;
                }
                // Pop through any spans a panic unwound past.
                while let Some(&top) = state.stack.last() {
                    state.stack.pop();
                    if top == index {
                        break;
                    }
                }
            }
        });
    }
}

/// A completed trace: the span tree plus any annotations.
pub struct TraceResult {
    spans: Vec<SpanRecord>,
    /// Annotations attached via [`annotate`], in insertion order.
    pub annotations: Vec<(String, Value)>,
}

impl TraceResult {
    /// The span tree as JSON: an array of root spans, each
    /// `{"name", "start_nanos", "duration_nanos", "children": [...]}`.
    pub fn spans_value(&self) -> Value {
        self.children_of(None)
    }

    /// The annotations as one JSON object.
    pub fn annotations_value(&self) -> Value {
        Value::object(
            self.annotations
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect::<Vec<_>>(),
        )
    }

    fn children_of(&self, parent: Option<usize>) -> Value {
        Value::Array(
            self.spans
                .iter()
                .enumerate()
                .filter(|(_, s)| s.parent == parent)
                .map(|(i, s)| {
                    Value::object([
                        ("name", Value::String(s.name.into())),
                        ("start_nanos", Value::Number(s.start_nanos as f64)),
                        (
                            "duration_nanos",
                            Value::Number(s.end_nanos.saturating_sub(s.start_nanos) as f64),
                        ),
                        ("children", self.children_of(Some(i))),
                    ])
                })
                .collect(),
        )
    }
}

/// Uninstalls this thread's collector and returns what it captured,
/// or `None` if no trace was active.
pub fn finish() -> Option<TraceResult> {
    ACTIVE.with(|cell| {
        cell.borrow_mut().take().map(|state| TraceResult {
            spans: state.spans,
            annotations: state.annotations,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_serialize_as_a_tree() {
        begin();
        {
            let _outer = span("request");
            {
                let _inner = span("acquire");
            }
            let _sibling = span("segment");
            annotate("latency", Value::Number(42.0));
        }
        let result = finish().expect("trace was active");
        let tree = result.spans_value();
        let roots = tree.as_array().unwrap();
        assert_eq!(roots.len(), 1);
        let root = &roots[0];
        assert_eq!(root.get("name").and_then(Value::as_str), Some("request"));
        let children = root.get("children").and_then(Value::as_array).unwrap();
        let names: Vec<&str> = children
            .iter()
            .filter_map(|c| c.get("name").and_then(Value::as_str))
            .collect();
        assert_eq!(names, ["acquire", "segment"]);
        assert_eq!(
            result
                .annotations_value()
                .get("latency")
                .and_then(Value::as_f64),
            Some(42.0)
        );
    }

    #[test]
    fn spans_without_a_trace_are_noops() {
        assert!(!is_active());
        let _span = span("orphan");
        annotate("ignored", Value::Null);
        assert!(finish().is_none());
    }

    #[test]
    fn worker_threads_do_not_inherit_the_collector() {
        begin();
        let handle = std::thread::spawn(|| {
            let _span = span("on-worker");
            is_active()
        });
        assert!(!handle.join().unwrap());
        let result = finish().unwrap();
        assert_eq!(result.spans_value().as_array().unwrap().len(), 0);
    }
}
