//! Levelled, structured JSON-lines logging.
//!
//! One event is one JSON object on one stderr line — machine-parseable,
//! never interleaved mid-line, and entirely a side channel: nothing the
//! engine computes depends on whether a line was emitted, so goldens and
//! determinism proptests hold at any log level.
//!
//! The global level comes from the `TSX_LOG` environment variable
//! (`off|error|warn|info|debug`, default `info`), read once on first use;
//! [`set_level`] overrides it (the server wires `--log-level` there).

use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use serde::Value;

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The process is losing data or violating an invariant.
    Error,
    /// Something failed but was absorbed (retry, fallback, discard).
    Warn,
    /// Lifecycle events: boot, recovery, shutdown.
    Info,
    /// Per-request detail.
    Debug,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    // 0 is reserved for "off" and 255 for "not yet initialised".
    fn rank(self) -> u8 {
        match self {
            Level::Error => 1,
            Level::Warn => 2,
            Level::Info => 3,
            Level::Debug => 4,
        }
    }
}

/// Parses a level name as accepted by `--log-level` / `TSX_LOG`.
/// `None` means logging is off entirely.
pub fn parse_level(name: &str) -> Result<Option<Level>, String> {
    match name.to_ascii_lowercase().as_str() {
        "off" | "none" => Ok(None),
        "error" => Ok(Some(Level::Error)),
        "warn" | "warning" => Ok(Some(Level::Warn)),
        "info" => Ok(Some(Level::Info)),
        "debug" => Ok(Some(Level::Debug)),
        other => Err(format!(
            "unknown log level {other:?} (expected off|error|warn|info|debug)"
        )),
    }
}

const UNSET: u8 = 255;
static LEVEL: AtomicU8 = AtomicU8::new(UNSET);

/// Sets the global level; `None` silences all logging.
pub fn set_level(level: Option<Level>) {
    LEVEL.store(level.map_or(0, Level::rank), Ordering::Relaxed);
}

fn current_rank() -> u8 {
    match LEVEL.load(Ordering::Relaxed) {
        UNSET => {
            let from_env = std::env::var("TSX_LOG")
                .ok()
                .and_then(|v| parse_level(&v).ok())
                .unwrap_or(Some(Level::Info));
            let rank = from_env.map_or(0, Level::rank);
            LEVEL.store(rank, Ordering::Relaxed);
            rank
        }
        rank => rank,
    }
}

/// Whether events at `level` are currently emitted.
pub fn enabled(level: Level) -> bool {
    level.rank() <= current_rank()
}

/// Formats one event as its JSON line (without emitting it).
pub fn format_line(
    level: Level,
    component: &str,
    message: &str,
    fields: &[(&str, Value)],
    ts_ms: u64,
) -> String {
    let mut entries: Vec<(&str, Value)> = vec![
        ("ts_ms", Value::Number(ts_ms as f64)),
        ("level", Value::String(level.as_str().into())),
        ("component", Value::String(component.into())),
        ("msg", Value::String(message.into())),
    ];
    entries.extend(fields.iter().cloned());
    serde_json::to_string(&Value::object(entries)).expect("log lines always encode")
}

/// Emits one structured event if `level` is enabled.
pub fn event(level: Level, component: &str, message: &str, fields: &[(&str, Value)]) {
    if !enabled(level) {
        return;
    }
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0);
    let line = format_line(level, component, message, fields, ts_ms);
    // One write_all per line keeps concurrent events line-atomic.
    let stderr = std::io::stderr();
    let mut handle = stderr.lock();
    let _ = handle.write_all(line.as_bytes());
    let _ = handle.write_all(b"\n");
}

/// An `error`-level event.
pub fn error(component: &str, message: &str, fields: &[(&str, Value)]) {
    event(Level::Error, component, message, fields);
}

/// A `warn`-level event.
pub fn warn(component: &str, message: &str, fields: &[(&str, Value)]) {
    event(Level::Warn, component, message, fields);
}

/// An `info`-level event.
pub fn info(component: &str, message: &str, fields: &[(&str, Value)]) {
    event(Level::Info, component, message, fields);
}

/// A `debug`-level event.
pub fn debug(component: &str, message: &str, fields: &[(&str, Value)]) {
    event(Level::Debug, component, message, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_json_objects_with_reserved_keys() {
        let line = format_line(
            Level::Warn,
            "store",
            "checkpoint failed (will retry)",
            &[
                ("tenant", Value::Number(7.0)),
                ("error", Value::String("disk full".into())),
            ],
            1_700_000_000_123,
        );
        let value: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(value.get("level").and_then(Value::as_str), Some("warn"));
        assert_eq!(
            value.get("component").and_then(Value::as_str),
            Some("store")
        );
        assert_eq!(value.get("tenant").and_then(Value::as_f64), Some(7.0));
        assert_eq!(
            value.get("ts_ms").and_then(Value::as_f64),
            Some(1_700_000_000_123.0)
        );
        assert!(!line.contains('\n'));
    }

    #[test]
    fn level_names_parse_both_ways() {
        assert_eq!(parse_level("off").unwrap(), None);
        assert_eq!(parse_level("ERROR").unwrap(), Some(Level::Error));
        assert_eq!(parse_level("warn").unwrap(), Some(Level::Warn));
        assert_eq!(parse_level("info").unwrap(), Some(Level::Info));
        assert_eq!(parse_level("debug").unwrap(), Some(Level::Debug));
        assert!(parse_level("loud").is_err());
    }
}
