//! Prometheus text exposition (format version 0.0.4).
//!
//! A small writer producing the plain-text scrape format: `# HELP` /
//! `# TYPE` headers, `name{label="value"} value` samples, and full
//! histogram series (`_bucket` with cumulative counts and an `+Inf`
//! terminator, `_sum` in seconds, `_count`). Metric names, label order,
//! and bucket boundaries are emitted exactly as given, so output is
//! deterministic and pinned by a golden-format test.

use crate::hist::{HistogramSnapshot, BUCKET_BOUNDS_NANOS};

/// An in-progress exposition document.
#[derive(Debug, Default)]
pub struct Exposition {
    buf: String,
}

impl Exposition {
    /// An empty document.
    pub fn new() -> Self {
        Exposition::default()
    }

    /// Writes the `# HELP` / `# TYPE` header for a metric. Call once per
    /// metric name, before its samples.
    pub fn header(&mut self, name: &str, kind: &str, help: &str) {
        self.buf.push_str("# HELP ");
        self.buf.push_str(name);
        self.buf.push(' ');
        self.buf.push_str(help);
        self.buf.push_str("\n# TYPE ");
        self.buf.push_str(name);
        self.buf.push(' ');
        self.buf.push_str(kind);
        self.buf.push('\n');
    }

    /// Writes one sample line.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.buf.push_str(name);
        self.write_labels(labels, None);
        self.buf.push(' ');
        self.buf.push_str(&fmt_value(value));
        self.buf.push('\n');
    }

    /// Writes one histogram series (`_bucket`, `_sum`, `_count`) from a
    /// snapshot. The header (kind `histogram`) must already be written.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], snap: &HistogramSnapshot) {
        let bucket_name = format!("{name}_bucket");
        let mut cumulative = 0u64;
        for (i, &count) in snap.buckets.iter().enumerate() {
            cumulative += count;
            self.buf.push_str(&bucket_name);
            self.write_labels(labels, Some(&fmt_seconds(BUCKET_BOUNDS_NANOS[i])));
            self.buf.push(' ');
            self.buf.push_str(&fmt_value(cumulative as f64));
            self.buf.push('\n');
        }
        cumulative += snap.overflow;
        self.buf.push_str(&bucket_name);
        self.write_labels(labels, Some("+Inf"));
        self.buf.push(' ');
        self.buf.push_str(&fmt_value(cumulative as f64));
        self.buf.push('\n');
        self.sample(&format!("{name}_sum"), labels, snap.sum_nanos as f64 / 1e9);
        self.sample(&format!("{name}_count"), labels, snap.count as f64);
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.buf
    }

    fn write_labels(&mut self, labels: &[(&str, &str)], le: Option<&str>) {
        if labels.is_empty() && le.is_none() {
            return;
        }
        self.buf.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                self.buf.push(',');
            }
            first = false;
            self.buf.push_str(k);
            self.buf.push_str("=\"");
            self.buf.push_str(&escape_label(v));
            self.buf.push('"');
        }
        if let Some(le) = le {
            if !first {
                self.buf.push(',');
            }
            self.buf.push_str("le=\"");
            self.buf.push_str(le);
            self.buf.push('"');
        }
        self.buf.push('}');
    }
}

fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Formats a sample value the way Prometheus parses it back: shortest
/// round-trip decimal, integral values without a trailing `.0`.
fn fmt_value(value: f64) -> String {
    format!("{value}")
}

/// A bucket boundary in seconds, from its nanosecond bound.
fn fmt_seconds(nanos: u64) -> String {
    format!("{}", nanos as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use std::time::Duration;

    /// Pins the exposition format: metric names, label ordering, bucket
    /// boundaries, cumulative bucket counts, and value formatting.
    #[test]
    fn golden_exposition_format() {
        let h = Histogram::new();
        h.record(Duration::from_micros(1)); // first bucket
        h.record(Duration::from_micros(1)); // first bucket
        h.record(Duration::from_millis(3)); // le=0.005
        h.record(Duration::from_secs(90)); // overflow
        let mut exp = Exposition::new();
        exp.header(
            "tsx_requests_total",
            "counter",
            "Total HTTP requests received.",
        );
        exp.sample("tsx_requests_total", &[], 4.0);
        exp.header(
            "tsx_request_duration_seconds",
            "histogram",
            "Wall-clock request latency by route.",
        );
        exp.histogram(
            "tsx_request_duration_seconds",
            &[("route", "explain")],
            &h.snapshot(),
        );
        let text = exp.finish();
        let expected = "\
# HELP tsx_requests_total Total HTTP requests received.
# TYPE tsx_requests_total counter
tsx_requests_total 4
# HELP tsx_request_duration_seconds Wall-clock request latency by route.
# TYPE tsx_request_duration_seconds histogram
tsx_request_duration_seconds_bucket{route=\"explain\",le=\"0.000001\"} 2
tsx_request_duration_seconds_bucket{route=\"explain\",le=\"0.000002\"} 2
tsx_request_duration_seconds_bucket{route=\"explain\",le=\"0.000005\"} 2
tsx_request_duration_seconds_bucket{route=\"explain\",le=\"0.00001\"} 2
tsx_request_duration_seconds_bucket{route=\"explain\",le=\"0.00002\"} 2
tsx_request_duration_seconds_bucket{route=\"explain\",le=\"0.00005\"} 2
tsx_request_duration_seconds_bucket{route=\"explain\",le=\"0.0001\"} 2
tsx_request_duration_seconds_bucket{route=\"explain\",le=\"0.0002\"} 2
tsx_request_duration_seconds_bucket{route=\"explain\",le=\"0.0005\"} 2
tsx_request_duration_seconds_bucket{route=\"explain\",le=\"0.001\"} 2
tsx_request_duration_seconds_bucket{route=\"explain\",le=\"0.002\"} 2
tsx_request_duration_seconds_bucket{route=\"explain\",le=\"0.005\"} 3
tsx_request_duration_seconds_bucket{route=\"explain\",le=\"0.01\"} 3
tsx_request_duration_seconds_bucket{route=\"explain\",le=\"0.02\"} 3
tsx_request_duration_seconds_bucket{route=\"explain\",le=\"0.05\"} 3
tsx_request_duration_seconds_bucket{route=\"explain\",le=\"0.1\"} 3
tsx_request_duration_seconds_bucket{route=\"explain\",le=\"0.2\"} 3
tsx_request_duration_seconds_bucket{route=\"explain\",le=\"0.5\"} 3
tsx_request_duration_seconds_bucket{route=\"explain\",le=\"1\"} 3
tsx_request_duration_seconds_bucket{route=\"explain\",le=\"2\"} 3
tsx_request_duration_seconds_bucket{route=\"explain\",le=\"5\"} 3
tsx_request_duration_seconds_bucket{route=\"explain\",le=\"10\"} 3
tsx_request_duration_seconds_bucket{route=\"explain\",le=\"20\"} 3
tsx_request_duration_seconds_bucket{route=\"explain\",le=\"60\"} 3
tsx_request_duration_seconds_bucket{route=\"explain\",le=\"+Inf\"} 4
tsx_request_duration_seconds_sum{route=\"explain\"} 90.003002
tsx_request_duration_seconds_count{route=\"explain\"} 4
";
        assert_eq!(text, expected);
    }

    #[test]
    fn label_values_are_escaped() {
        let mut exp = Exposition::new();
        exp.sample("m", &[("path", "a\"b\\c\nd")], 1.0);
        assert_eq!(exp.finish(), "m{path=\"a\\\"b\\\\c\\nd\"} 1\n");
    }

    #[test]
    fn every_sample_line_parses_as_name_labels_value() {
        let h = Histogram::new();
        h.record(Duration::from_millis(7));
        let mut exp = Exposition::new();
        exp.header("tsx_x_seconds", "histogram", "x");
        exp.histogram("tsx_x_seconds", &[("tenant", "3")], &h.snapshot());
        for line in exp.finish().lines().filter(|l| !l.starts_with('#')) {
            let (series, value) = line.rsplit_once(' ').unwrap();
            assert!(value.parse::<f64>().is_ok() || value == "+Inf", "{line}");
            assert!(series.starts_with("tsx_x_seconds"), "{line}");
            if let Some(open) = series.find('{') {
                assert!(series.ends_with('}'), "{line}");
                assert!(series[open..].contains('='), "{line}");
            }
        }
    }
}
