//! Labelled monotonic counters — the counter sibling of
//! [`HistogramFamily`](crate::hist::HistogramFamily).
//!
//! One atomic counter per label value, created on first use, kept sorted
//! so exposition order is deterministic. The serving stack uses this for
//! per-tenant admission decisions (`tsx_tenant_throttled_total{tenant}`),
//! keyed on the same label axis as the per-tenant latency histograms so
//! throttle counts and the latency they protect read off the same axis.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A labelled set of monotonic counters, created on first use.
#[derive(Debug, Default)]
pub struct CounterFamily {
    inner: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
}

impl CounterFamily {
    /// An empty family.
    pub fn new() -> Self {
        CounterFamily::default()
    }

    /// The counter for `label`, created at zero if absent.
    pub fn get(&self, label: &str) -> Arc<AtomicU64> {
        if let Some(c) = self
            .inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(label)
        {
            return Arc::clone(c);
        }
        let mut map = self.inner.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(label.to_string()).or_default())
    }

    /// Adds `n` to `label`'s counter.
    pub fn add(&self, label: &str, n: u64) {
        self.get(label).fetch_add(n, Ordering::Relaxed);
    }

    /// The current value of `label`'s counter (zero if never touched).
    pub fn value(&self, label: &str) -> u64 {
        self.inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(label)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Every labelled counter's value, sorted by label.
    pub fn snapshot_all(&self) -> Vec<(String, u64)> {
        self.inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(label, c)| (label.clone(), c.load(Ordering::Relaxed)))
            .collect()
    }

    /// Sum across all labels.
    pub fn total(&self) -> u64 {
        self.inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label() {
        let fam = CounterFamily::new();
        fam.add("7", 1);
        fam.add("7", 2);
        fam.add("9", 5);
        assert_eq!(fam.value("7"), 3);
        assert_eq!(fam.value("9"), 5);
        assert_eq!(fam.value("never-seen"), 0);
        assert_eq!(fam.total(), 8);
    }

    #[test]
    fn snapshot_is_sorted_by_label() {
        let fam = CounterFamily::new();
        fam.add("zeta", 1);
        fam.add("alpha", 2);
        let all = fam.snapshot_all();
        assert_eq!(all, vec![("alpha".into(), 2), ("zeta".into(), 1)]);
    }
}
