//! A lock-free, log-bucketed latency histogram.
//!
//! Durations land in a fixed set of 1–2–5 log-spaced buckets (atomic
//! counters, so recording is wait-free and thread-safe), which makes two
//! histograms mergeable by plain addition: the merge is associative,
//! commutative, and independent of the thread count that produced the
//! samples. Quantile estimates are conservative upper bounds — always the
//! upper boundary of the bucket holding the requested rank — so an
//! estimate never under-reports the exact sorted-oracle value and
//! over-reports it by at most one bucket width (≤ 2.5×).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Bucket upper bounds in nanoseconds: a 1–2–5 series from 1µs to 60s.
///
/// The boundaries are part of the exposition contract (they become
/// Prometheus `le` labels), so they are public and pinned by tests.
pub const BUCKET_BOUNDS_NANOS: [u64; 24] = [
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
    10_000_000_000,
    20_000_000_000,
    60_000_000_000,
];

/// The bucket a duration of `nanos` falls into, or `None` for the
/// overflow (`+Inf`) bucket.
pub fn bucket_index(nanos: u64) -> Option<usize> {
    let idx = BUCKET_BOUNDS_NANOS.partition_point(|&bound| bound < nanos);
    if idx < BUCKET_BOUNDS_NANOS.len() {
        Some(idx)
    } else {
        None
    }
}

/// A mergeable, lock-free latency histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_NANOS.len()],
    overflow: AtomicU64,
    sum_nanos: AtomicU64,
    count: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }

    /// Records one duration.
    pub fn record(&self, d: Duration) {
        self.record_nanos(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one duration given in nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        match bucket_index(nanos) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Folds another histogram's counts into this one. Addition of
    /// per-bucket counters, so merging is associative and commutative.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            self.merge_bucket(mine, theirs);
        }
        self.merge_bucket(&self.overflow, &other.overflow);
        self.merge_bucket(&self.sum_nanos, &other.sum_nanos);
        self.merge_bucket(&self.count, &other.count);
        self.max_nanos
            .fetch_max(other.max_nanos.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn merge_bucket(&self, mine: &AtomicU64, theirs: &AtomicU64) {
        let v = theirs.load(Ordering::Relaxed);
        if v != 0 {
            mine.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// A consistent-enough point-in-time copy for quantiles and exposition.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            overflow: self.overflow.load(Ordering::Relaxed),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data copy of a [`Histogram`]'s counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) counts, aligned with
    /// [`BUCKET_BOUNDS_NANOS`].
    pub buckets: Vec<u64>,
    /// Samples above the last bucket boundary.
    pub overflow: u64,
    /// Sum of all recorded durations, in nanoseconds.
    pub sum_nanos: u64,
    /// Total number of recorded samples.
    pub count: u64,
    /// The largest single recorded duration, in nanoseconds.
    pub max_nanos: u64,
}

impl HistogramSnapshot {
    /// The estimated `q`-quantile (`0.0 ..= 1.0`) in nanoseconds: the
    /// upper boundary of the bucket containing the rank-`⌈q·count⌉`
    /// sample (the observed maximum for the overflow bucket). Returns 0
    /// on an empty histogram.
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return BUCKET_BOUNDS_NANOS[i];
            }
        }
        self.max_nanos
    }

    /// The estimated `q`-quantile as a [`Duration`].
    pub fn quantile(&self, q: f64) -> Duration {
        Duration::from_nanos(self.quantile_nanos(q))
    }

    /// Median estimate.
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> Duration {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// 99.9th-percentile estimate.
    pub fn p999(&self) -> Duration {
        self.quantile(0.999)
    }

    /// The largest recorded duration.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos)
    }
}

/// A labelled set of histograms (one per label value), created on first
/// use. Labels are kept sorted so exposition order is deterministic.
#[derive(Debug, Default)]
pub struct HistogramFamily {
    inner: RwLock<std::collections::BTreeMap<String, Arc<Histogram>>>,
}

impl HistogramFamily {
    /// An empty family.
    pub fn new() -> Self {
        HistogramFamily::default()
    }

    /// The histogram for `label`, created empty if absent.
    pub fn get(&self, label: &str) -> Arc<Histogram> {
        if let Some(h) = self
            .inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(label)
        {
            return Arc::clone(h);
        }
        let mut map = self.inner.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(label.to_string()).or_default())
    }

    /// Records a duration against `label`.
    pub fn record(&self, label: &str, d: Duration) {
        self.get(label).record(d);
    }

    /// Snapshots every labelled histogram, sorted by label.
    pub fn snapshot_all(&self) -> Vec<(String, HistogramSnapshot)> {
        self.inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(label, h)| (label.clone(), h.snapshot()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_strictly_increasing() {
        for pair in BUCKET_BOUNDS_NANOS.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn bucket_index_is_the_first_bound_at_or_above() {
        assert_eq!(bucket_index(0), Some(0));
        assert_eq!(bucket_index(1_000), Some(0));
        assert_eq!(bucket_index(1_001), Some(1));
        assert_eq!(bucket_index(60_000_000_000), Some(23));
        assert_eq!(bucket_index(60_000_000_001), None);
    }

    #[test]
    fn quantiles_upper_bound_the_exact_oracle() {
        let h = Histogram::new();
        let samples: Vec<u64> = (1..=1000).map(|i| i * 7_919).collect();
        for &s in &samples {
            h.record_nanos(s);
        }
        let snap = h.snapshot();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = snap.quantile_nanos(q);
            assert!(est >= exact, "q={q}: {est} < {exact}");
            assert_eq!(
                Some(est),
                bucket_index(exact).map(|i| BUCKET_BOUNDS_NANOS[i])
            );
        }
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile_nanos(0.99), 0);
        assert_eq!(snap.max(), Duration::ZERO);
    }

    #[test]
    fn overflow_quantile_is_the_observed_max() {
        let h = Histogram::new();
        h.record_nanos(90_000_000_000);
        h.record_nanos(120_000_000_000);
        let snap = h.snapshot();
        assert_eq!(snap.overflow, 2);
        assert_eq!(snap.quantile_nanos(0.99), 120_000_000_000);
    }

    #[test]
    fn merge_adds_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_nanos(500);
        b.record_nanos(500);
        b.record_nanos(3_000_000);
        a.merge_from(&b);
        let snap = a.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.buckets[0], 2);
        assert_eq!(snap.sum_nanos, 3_001_000);
        assert_eq!(snap.max_nanos, 3_000_000);
    }

    #[test]
    fn family_creates_on_demand_and_sorts_labels() {
        let fam = HistogramFamily::new();
        fam.record("zeta", Duration::from_micros(5));
        fam.record("alpha", Duration::from_micros(9));
        fam.record("zeta", Duration::from_micros(7));
        let all = fam.snapshot_all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, "alpha");
        assert_eq!(all[1].0, "zeta");
        assert_eq!(all[1].1.count, 2);
    }
}
