//! # tsexplain-obs
//!
//! Dependency-free observability primitives for the TSExplain serving
//! stack, in the workspace's vendoring spirit (std + the vendored
//! `serde`/`serde_json` only):
//!
//! - [`hist`]: a lock-free, log-bucketed, mergeable latency histogram
//!   with p50/p90/p99/p99.9 estimation — the one percentile
//!   implementation shared by the server and the bench harness.
//! - [`counter`]: labelled monotonic counters (the counter sibling of
//!   the histogram family), used for per-tenant admission decisions.
//! - [`log`]: levelled structured JSON-lines logging to stderr
//!   (`TSX_LOG` / `--log-level`), with component/tenant/request-id
//!   fields.
//! - [`trace`]: a span API with an ambient thread-local collector, so
//!   pipeline stages record nested spans with zero plumbing and zero
//!   cost when no trace is active.
//! - [`flight`]: a fixed-size ring of recent slow requests (span tree +
//!   latency breakdown), the data behind `GET /debug/requests`.
//! - [`prom`]: Prometheus text exposition (`_bucket`/`_sum`/`_count`)
//!   for `GET /metrics?format=prometheus`.
//!
//! Everything here is a side channel: recording, logging, and tracing
//! never feed back into the engine, so explain output stays
//! byte-identical with observability on or off, at any thread count.

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout)]
pub mod counter;
pub mod flight;
pub mod hist;
pub mod log;
pub mod prom;
pub mod trace;

pub use counter::CounterFamily;
pub use flight::{FlightEntry, FlightRecorder};
pub use hist::{bucket_index, Histogram, HistogramFamily, HistogramSnapshot, BUCKET_BOUNDS_NANOS};
pub use log::Level;
pub use prom::Exposition;
