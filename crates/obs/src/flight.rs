//! A slow-request flight recorder.
//!
//! A fixed-size ring of the most recent requests whose wall-clock time
//! met a configurable threshold, each carrying its request id, route,
//! status, duration, full span tree, and any trace annotations (the
//! server attaches the engine's `LatencyBreakdown`). Served by the
//! server at `GET /debug/requests` so "why was that one slow?" is
//! answerable after the fact without re-running anything.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use serde::Value;

/// One recorded slow request.
#[derive(Clone, Debug)]
pub struct FlightEntry {
    /// Monotonic sequence number (process-wide, oldest = smallest).
    pub seq: u64,
    /// The request id echoed on the response.
    pub request_id: String,
    /// Upper-cased HTTP method.
    pub method: String,
    /// Request path (query stripped).
    pub path: String,
    /// Response status code.
    pub status: u16,
    /// Wall-clock time spent handling the request, in nanoseconds.
    pub duration_nanos: u64,
    /// The span tree captured by the trace (see `trace::spans_value`).
    pub spans: Value,
    /// Trace annotations, e.g. the engine's latency breakdown.
    pub annotations: Value,
}

impl FlightEntry {
    fn serialize(&self) -> Value {
        Value::object([
            ("seq", Value::Number(self.seq as f64)),
            ("request_id", Value::String(self.request_id.clone())),
            ("method", Value::String(self.method.clone())),
            ("path", Value::String(self.path.clone())),
            ("status", Value::Number(self.status as f64)),
            ("duration_nanos", Value::Number(self.duration_nanos as f64)),
            ("spans", self.spans.clone()),
            ("annotations", self.annotations.clone()),
        ])
    }
}

/// The ring buffer of recent slow requests.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    slow_nanos: u64,
    seq: AtomicU64,
    entries: Mutex<VecDeque<FlightEntry>>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` requests at or above the
    /// `slow` threshold (a zero threshold records every request).
    pub fn new(capacity: usize, slow: Duration) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            slow_nanos: slow.as_nanos().min(u64::MAX as u128) as u64,
            seq: AtomicU64::new(0),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// The slow threshold.
    pub fn slow_threshold(&self) -> Duration {
        Duration::from_nanos(self.slow_nanos)
    }

    /// Whether a request of `duration` qualifies for recording.
    pub fn qualifies(&self, duration: Duration) -> bool {
        duration.as_nanos() >= self.slow_nanos as u128
    }

    /// Records `entry` if its duration meets the threshold, evicting the
    /// oldest entry when full. Returns whether it was kept. The entry's
    /// `seq` field is assigned here.
    pub fn record(&self, mut entry: FlightEntry) -> bool {
        if entry.duration_nanos < self.slow_nanos {
            return false;
        }
        entry.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(entry);
        true
    }

    /// The recorder's contents as JSON, newest request last.
    pub fn snapshot_value(&self) -> Value {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        Value::object([
            ("capacity", Value::Number(self.capacity as f64)),
            (
                "slow_threshold_ms",
                Value::Number(self.slow_nanos as f64 / 1e6),
            ),
            (
                "requests",
                Value::Array(entries.iter().map(FlightEntry::serialize).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(request_id: &str, millis: u64) -> FlightEntry {
        FlightEntry {
            seq: 0,
            request_id: request_id.into(),
            method: "POST".into(),
            path: "/datasets/1/explain".into(),
            status: 200,
            duration_nanos: millis * 1_000_000,
            spans: Value::Array(vec![]),
            annotations: Value::object::<&str, _>([]),
        }
    }

    #[test]
    fn fast_requests_are_not_recorded() {
        let rec = FlightRecorder::new(4, Duration::from_millis(100));
        assert!(!rec.record(entry("fast", 5)));
        assert!(rec.record(entry("slow", 100)));
        let snap = rec.snapshot_value();
        assert_eq!(
            snap.get("requests")
                .and_then(Value::as_array)
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn the_ring_evicts_oldest_first() {
        let rec = FlightRecorder::new(2, Duration::ZERO);
        for id in ["a", "b", "c"] {
            assert!(rec.record(entry(id, 1)));
        }
        let snap = rec.snapshot_value();
        let ids: Vec<&str> = snap
            .get("requests")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .filter_map(|e| e.get("request_id").and_then(Value::as_str))
            .collect();
        assert_eq!(ids, ["b", "c"]);
    }

    #[test]
    fn zero_threshold_records_everything() {
        let rec = FlightRecorder::new(8, Duration::ZERO);
        assert!(rec.qualifies(Duration::ZERO));
        assert!(rec.record(entry("any", 0)));
    }
}
