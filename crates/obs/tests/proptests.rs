//! Property tests for the histogram: the merge is associative, quantile
//! estimates bound the exact sorted oracle, and totals are independent
//! of how samples are spread across recording threads.

use proptest::prelude::*;
use std::sync::Arc;
use tsexplain_obs::{bucket_index, Histogram, BUCKET_BOUNDS_NANOS};

fn filled(samples: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &s in samples {
        h.record_nanos(s);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (a ⊕ b) ⊕ c and a ⊕ (b ⊕ c) leave identical counters.
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(0u64..100_000_000_000, 0..40),
        b in proptest::collection::vec(0u64..100_000_000_000, 0..40),
        c in proptest::collection::vec(0u64..100_000_000_000, 0..40),
    ) {
        let left = filled(&a);
        left.merge_from(&filled(&b));
        left.merge_from(&filled(&c));

        let bc = filled(&b);
        bc.merge_from(&filled(&c));
        let right = filled(&a);
        right.merge_from(&bc);

        prop_assert_eq!(left.snapshot(), right.snapshot());
    }

    /// The estimate never under-reports the exact sorted-oracle value,
    /// and never exceeds the upper bound of the exact value's bucket.
    #[test]
    fn quantile_bounds_the_exact_oracle(
        mut samples in proptest::collection::vec(1u64..80_000_000_000, 1..200),
        q_permille in 1u64..1000,
    ) {
        let q = q_permille as f64 / 1000.0;
        let snap = filled(&samples).snapshot();
        samples.sort_unstable();
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        let exact = samples[rank - 1];
        let est = snap.quantile_nanos(q);
        prop_assert!(est >= exact, "estimate {est} under exact {exact}");
        let upper = match bucket_index(exact) {
            Some(i) => BUCKET_BOUNDS_NANOS[i],
            None => snap.max_nanos,
        };
        prop_assert!(est <= upper, "estimate {est} above bucket bound {upper}");
    }

    /// Recording the same multiset from one thread or four gives
    /// identical totals, buckets, sums, and quantiles.
    #[test]
    fn totals_are_thread_count_independent(
        samples in proptest::collection::vec(0u64..100_000_000_000, 1..120),
    ) {
        let sequential = filled(&samples).snapshot();

        let concurrent = Arc::new(Histogram::new());
        let chunk = samples.len().div_ceil(4);
        let handles: Vec<_> = samples
            .chunks(chunk)
            .map(|part| {
                let h = Arc::clone(&concurrent);
                let part = part.to_vec();
                std::thread::spawn(move || {
                    for s in part {
                        h.record_nanos(s);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }

        prop_assert_eq!(sequential, concurrent.snapshot());
    }
}
