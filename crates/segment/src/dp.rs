use tsexplain_parallel::ParallelCtx;

use crate::cost::CostMatrix;
use crate::error::SegmentError;

/// Below this many cells per K-layer the DP recurrence runs inline.
const PAR_MIN_LAYER_CELLS: usize = 64;

/// The output of the K-Segmentation dynamic program (Eq. 11): optimal total
/// costs `D(n, k)` and back-pointers for every `k` up to the cap, computed
/// in a single pass.
///
/// The paper's optimal-K selection (§6) relies on exactly this: computing
/// `D(n, K = 20)` yields `D(n, k)` for every smaller `k` at no extra cost,
/// which is the K-Variance curve the elbow method inspects.
#[derive(Clone, Debug)]
pub struct DpResult {
    n_pos: usize,
    k_max: usize,
    /// `d[j * (k_max + 1) + k]` = minimal total cost of splitting positions
    /// `0..=j` into `k` segments.
    d: Vec<f64>,
    /// Back-pointer: the previous boundary position index.
    prev: Vec<u32>,
}

impl DpResult {
    /// Number of candidate positions.
    pub fn n_pos(&self) -> usize {
        self.n_pos
    }

    /// The largest K computed.
    pub fn k_max(&self) -> usize {
        self.k_max
    }

    fn at(&self, j: usize, k: usize) -> f64 {
        self.d[j * (self.k_max + 1) + k]
    }

    /// The optimal total cost `D(n, k)`; `+∞` when no valid scheme exists.
    pub fn total_cost(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.k_max, "k out of range");
        self.at(self.n_pos - 1, k)
    }

    /// The K-Variance curve `[(k, D(n, k))]` over all feasible `k`.
    pub fn k_variance_curve(&self) -> Vec<(usize, f64)> {
        (1..=self.k_max)
            .map(|k| (k, self.total_cost(k)))
            .filter(|(_, c)| c.is_finite())
            .collect()
    }

    /// The largest `k` with a finite optimal cost.
    pub fn feasible_k_max(&self) -> usize {
        (1..=self.k_max)
            .rev()
            .find(|&k| self.total_cost(k).is_finite())
            .unwrap_or(0)
    }

    /// The interior cut *position indices* of the optimal `k`-segmentation.
    pub fn cuts(&self, k: usize) -> Result<Vec<usize>, SegmentError> {
        if k < 1 || k > self.k_max || !self.total_cost(k).is_finite() {
            return Err(SegmentError::InfeasibleK {
                k,
                positions: self.n_pos,
            });
        }
        let mut cuts = Vec::with_capacity(k - 1);
        let mut j = self.n_pos - 1;
        for kk in (2..=k).rev() {
            j = self.prev[j * (self.k_max + 1) + kk] as usize;
            cuts.push(j);
        }
        cuts.reverse();
        Ok(cuts)
    }
}

/// Solves K-Segmentation over a cost matrix for all `k ∈ 1..=k_max`
/// (Eq. 11):
///
/// ```text
/// D(j, k) = min_{j'} [ D(j', k−1) + cost(j', j) ]
/// ```
///
/// Positions are the matrix's candidate cut positions; every segment spans
/// at least one position step. When the matrix is banded, transitions are
/// restricted to the band, giving the `O(L · n · K)` sketch-phase bound.
///
/// Runs sequentially; [`k_segmentation_with`] fans each K-layer's rows
/// across a [`ParallelCtx`] and is byte-identical by construction.
pub fn k_segmentation(costs: &CostMatrix, k_max: usize) -> DpResult {
    k_segmentation_with(costs, k_max, &ParallelCtx::sequential())
}

/// [`k_segmentation`] with an explicit parallel context.
///
/// The recurrence is layer-sequential in `k`, but within one layer every
/// cell `D(j, k)` reads only layer `k − 1`, so the cells of a layer are
/// mutually independent: they are fanned across the worker chunks and
/// written back in `j` order. Each cell's inner minimization keeps the
/// sequential loop order (first-minimum tie-breaking), so the resulting
/// costs *and* back-pointers are byte-identical at any thread count.
pub fn k_segmentation_with(costs: &CostMatrix, k_max: usize, par: &ParallelCtx) -> DpResult {
    let n_pos = costs.n_pos();
    assert!(n_pos >= 2, "need at least two positions");
    let k_max = k_max.max(1).min(n_pos - 1);
    let stride = k_max + 1;
    let mut d = vec![f64::INFINITY; n_pos * stride];
    let mut prev = vec![u32::MAX; n_pos * stride];

    for j in 1..n_pos {
        d[j * stride + 1] = costs.get(0, j);
    }
    for k in 2..=k_max {
        // Layer-boundary cancellation poll: the caller (DpSegmenter)
        // re-checks the token after the solve and discards this partial
        // table, so truncated layers never reach a successful response.
        if par.is_cancelled() {
            break;
        }
        let cell = |j: usize, d: &[f64]| -> (f64, u32) {
            let lo = match costs.band() {
                Some(band) => j.saturating_sub(band).max(k - 1),
                None => k - 1,
            };
            let mut best = f64::INFINITY;
            let mut arg = u32::MAX;
            for jp in lo..j {
                let left = d[jp * stride + (k - 1)];
                if !left.is_finite() {
                    continue;
                }
                let cand = left + costs.get(jp, j);
                if cand < best {
                    best = cand;
                    arg = jp as u32;
                }
            }
            (best, arg)
        };
        let n_cells = n_pos - k;
        if par.is_sequential() || n_cells < PAR_MIN_LAYER_CELLS {
            for j in k..n_pos {
                let (best, arg) = cell(j, &d);
                d[j * stride + k] = best;
                prev[j * stride + k] = arg;
            }
        } else {
            let d_read = &d;
            let layer: Vec<(f64, u32)> = par.run_chunks(n_cells, |range| {
                range.map(|off| cell(k + off, d_read)).collect()
            });
            for (off, (best, arg)) in layer.into_iter().enumerate() {
                let j = k + off;
                d[j * stride + k] = best;
                prev[j * stride + k] = arg;
            }
        }
    }

    DpResult {
        n_pos,
        k_max,
        d,
        prev,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Costs from an additive per-point "badness": segment (i, j) costs the
    /// squared distance between a step series' values at i and j, so the
    /// optimal 2-segmentation cuts exactly at the step.
    fn step_costs(values: &[f64]) -> CostMatrix {
        let n = values.len();
        let mut m = CostMatrix::dense(n);
        for i in 0..n {
            for j in i + 1..n {
                // Sum of squared deviations from the segment's linear
                // interpolation: zero for segments inside one flat level.
                let mut cost = 0.0;
                for x in i..=j {
                    let frac = (x - i) as f64 / (j - i) as f64;
                    let interp = values[i] + frac * (values[j] - values[i]);
                    cost += (values[x] - interp).powi(2);
                }
                m.set(i, j, cost);
            }
        }
        m
    }

    #[test]
    fn finds_single_breakpoint() {
        // Flat then linearly rising: the unique zero-cost 2-segmentation
        // cuts exactly at the knee (index 2).
        let values = [0.0, 0.0, 0.0, 10.0, 20.0, 30.0];
        let dp = k_segmentation(&step_costs(&values), 3);
        assert!(dp.total_cost(1) > 0.0);
        assert!(dp.total_cost(2).abs() < 1e-12);
        assert_eq!(dp.cuts(2).unwrap(), vec![2]);
    }

    #[test]
    fn cost_is_monotone_for_length_convex_costs() {
        // With a cost that is convex in segment length, splitting any
        // segment strictly helps, so D(n, k) must decrease with k.
        let n = 9;
        let mut costs = CostMatrix::dense(n);
        for i in 0..n {
            for j in i + 1..n {
                costs.set(i, j, ((j - i - 1) * (j - i - 1)) as f64);
            }
        }
        let dp = k_segmentation(&costs, 6);
        for k in 2..=6 {
            assert!(
                dp.total_cost(k) <= dp.total_cost(k - 1) + 1e-12,
                "k={k}: {} > {}",
                dp.total_cost(k),
                dp.total_cost(k - 1)
            );
        }
    }

    #[test]
    fn max_k_gives_zero_cost() {
        let values = [1.0, 4.0, 2.0, 8.0, 3.0];
        let dp = k_segmentation(&step_costs(&values), 4);
        // K = n − 1 puts every object in its own segment: cost 0.
        assert!(dp.total_cost(4).abs() < 1e-12);
        let cuts = dp.cuts(4).unwrap();
        assert_eq!(cuts, vec![1, 2, 3]);
    }

    #[test]
    fn matches_brute_force_enumeration() {
        let values = [2.0, 7.0, 1.0, 9.0, 4.0, 6.0, 3.0];
        let n = values.len();
        let costs = step_costs(&values);
        let dp = k_segmentation(&costs, n - 1);
        for k in 1..n {
            // Enumerate all (k−1)-subsets of interior positions.
            let interior: Vec<usize> = (1..n - 1).collect();
            let mut best = f64::INFINITY;
            let combos = combinations(&interior, k - 1);
            for cuts in combos {
                let mut bounds = vec![0];
                bounds.extend(cuts.iter().copied());
                bounds.push(n - 1);
                let total: f64 = bounds.windows(2).map(|w| costs.get(w[0], w[1])).sum();
                best = best.min(total);
            }
            assert!(
                (dp.total_cost(k) - best).abs() < 1e-9,
                "k={k}: dp={} brute={best}",
                dp.total_cost(k)
            );
        }
    }

    fn combinations(items: &[usize], k: usize) -> Vec<Vec<usize>> {
        if k == 0 {
            return vec![Vec::new()];
        }
        let mut out = Vec::new();
        for (i, &x) in items.iter().enumerate() {
            for mut rest in combinations(&items[i + 1..], k - 1) {
                rest.insert(0, x);
                out.push(rest);
            }
        }
        out
    }

    #[test]
    fn banded_dp_respects_band() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let n = values.len();
        let dense = step_costs(&values);
        let mut banded = CostMatrix::banded(n, 2);
        for i in 0..n {
            for j in i + 1..n.min(i + 3) {
                banded.set(i, j, dense.get(i, j));
            }
        }
        let dp = k_segmentation(&banded, 5);
        // K = 1 (one 6-point segment) exceeds the band: infeasible.
        assert!(!dp.total_cost(1).is_finite());
        // K = 3 is feasible (2+2+1 points per segment ≤ band).
        assert!(dp.total_cost(3).is_finite());
        let cuts = dp.cuts(3).unwrap();
        assert_eq!(cuts.len(), 2);
        // Every segment within the band.
        let mut bounds = vec![0];
        bounds.extend(&cuts);
        bounds.push(n - 1);
        assert!(bounds.windows(2).all(|w| w[1] - w[0] <= 2));
    }

    #[test]
    fn infeasible_k_errors() {
        let values = [1.0, 2.0, 3.0];
        let dp = k_segmentation(&step_costs(&values), 2);
        assert!(dp.cuts(2).is_ok());
        assert!(matches!(
            // k_max clamps at n−1 = 2, so ask for k=2 on a banded-infeasible…
            // here just check out-of-range k errors via cuts().
            dp.cuts(5),
            Err(SegmentError::InfeasibleK { .. })
        ));
    }

    #[test]
    fn parallel_dp_matches_sequential_costs_and_backpointers() {
        // A cost surface with near-ties so first-minimum tie-breaking is
        // actually exercised, over enough positions to cross the parallel
        // layer threshold.
        let n = 80;
        let mut costs = CostMatrix::dense(n);
        for i in 0..n {
            for j in i + 1..n {
                let len = (j - i) as f64;
                costs.set(
                    i,
                    j,
                    (len - 4.0).abs() + ((i * 7 + j * 3) % 5) as f64 * 0.25,
                );
            }
        }
        let seq = k_segmentation(&costs, 20);
        for threads in [2, 8] {
            let par = k_segmentation_with(&costs, 20, &ParallelCtx::new(threads));
            for k in 1..=20 {
                let (a, b) = (seq.total_cost(k), par.total_cost(k));
                assert!(
                    a == b || (a.is_infinite() && b.is_infinite()),
                    "t={threads} k={k}: {a} vs {b}"
                );
                if a.is_finite() {
                    assert_eq!(
                        seq.cuts(k).unwrap(),
                        par.cuts(k).unwrap(),
                        "t={threads} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn curve_lists_feasible_ks() {
        let values = [1.0, 5.0, 2.0, 6.0, 3.0];
        let dp = k_segmentation(&step_costs(&values), 4);
        let curve = dp.k_variance_curve();
        assert_eq!(curve.len(), 4);
        assert_eq!(curve[0].0, 1);
        assert_eq!(dp.feasible_k_max(), 4);
    }
}
