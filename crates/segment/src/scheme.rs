use crate::error::SegmentError;

/// A K-segmentation scheme over a time series of `n` points (0-based point
/// indices).
///
/// The scheme is described by its interior cut positions
/// `c_2 < c_3 < … < c_K` (Definition 3.7 uses 1-based `c_1 = 1` and
/// `c_{K+1} = n`; here the implicit boundaries are `0` and `n − 1`).
/// Segment `i` spans points `[boundaries[i], boundaries[i+1]]` inclusive —
/// neighbouring segments share their boundary point, exactly as in the
/// paper's `P_i = [p_{c_i}, p_{c_{i+1}}]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segmentation {
    n: usize,
    cuts: Vec<usize>,
}

impl Segmentation {
    /// Builds a scheme over `n` points with the given interior cuts.
    ///
    /// Cuts must be strictly increasing and lie strictly inside `(0, n-1)`.
    pub fn new(n: usize, cuts: Vec<usize>) -> Result<Self, SegmentError> {
        if n < 2 {
            return Err(SegmentError::TooFewPoints(n));
        }
        for (i, &c) in cuts.iter().enumerate() {
            if c == 0 || c >= n - 1 {
                return Err(SegmentError::InvalidCuts(format!(
                    "cut {c} outside interior (0, {})",
                    n - 1
                )));
            }
            if i > 0 && cuts[i - 1] >= c {
                return Err(SegmentError::InvalidCuts(format!(
                    "cuts not strictly increasing at {c}"
                )));
            }
        }
        Ok(Segmentation { n, cuts })
    }

    /// The single-segment scheme (K = 1).
    pub fn whole(n: usize) -> Result<Self, SegmentError> {
        Segmentation::new(n, Vec::new())
    }

    /// Number of points in the underlying series.
    pub fn n_points(&self) -> usize {
        self.n
    }

    /// The number of segments K.
    pub fn k(&self) -> usize {
        self.cuts.len() + 1
    }

    /// Interior cut positions (ascending).
    pub fn cuts(&self) -> &[usize] {
        &self.cuts
    }

    /// All boundaries including the endpoints: `[0, c_2, …, c_K, n−1]`.
    pub fn boundaries(&self) -> Vec<usize> {
        let mut b = Vec::with_capacity(self.cuts.len() + 2);
        b.push(0);
        b.extend_from_slice(&self.cuts);
        b.push(self.n - 1);
        b
    }

    /// The segments as `(start, end)` point-index pairs (inclusive ends).
    pub fn segments(&self) -> Vec<(usize, usize)> {
        let b = self.boundaries();
        b.windows(2).map(|w| (w[0], w[1])).collect()
    }

    /// Number of unit objects `[p_x, p_{x+1}]` inside segment `i` — the
    /// `|P_i|` weight of Problem 1.
    pub fn segment_len(&self, i: usize) -> usize {
        let (a, b) = self.segments()[i];
        b - a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_series_is_one_segment() {
        let s = Segmentation::whole(10).unwrap();
        assert_eq!(s.k(), 1);
        assert_eq!(s.segments(), vec![(0, 9)]);
        assert_eq!(s.segment_len(0), 9);
    }

    #[test]
    fn segments_share_boundaries() {
        let s = Segmentation::new(10, vec![3, 7]).unwrap();
        assert_eq!(s.k(), 3);
        assert_eq!(s.segments(), vec![(0, 3), (3, 7), (7, 9)]);
        assert_eq!(s.boundaries(), vec![0, 3, 7, 9]);
    }

    #[test]
    fn rejects_out_of_range_cuts() {
        assert!(Segmentation::new(10, vec![0]).is_err());
        assert!(Segmentation::new(10, vec![9]).is_err());
        assert!(Segmentation::new(10, vec![10]).is_err());
    }

    #[test]
    fn rejects_unsorted_or_duplicate_cuts() {
        assert!(Segmentation::new(10, vec![5, 3]).is_err());
        assert!(Segmentation::new(10, vec![4, 4]).is_err());
    }

    #[test]
    fn rejects_tiny_series() {
        assert!(Segmentation::whole(1).is_err());
        assert!(Segmentation::whole(0).is_err());
    }

    #[test]
    fn segment_lengths_sum_to_object_count() {
        let s = Segmentation::new(20, vec![4, 9, 15]).unwrap();
        let total: usize = (0..s.k()).map(|i| s.segment_len(i)).sum();
        assert_eq!(total, 19);
    }
}
