//! The pluggable segmentation strategy boundary.
//!
//! The explanation pipeline is "explain any segmentation": a [`Segmenter`]
//! proposes a [`Segmentation`] (plus the K-cost curve backing the choice)
//! over the explanation-aware [`SegmentationContext`], and the cube-backed
//! top-m explanation stage then runs unchanged on whatever scheme came
//! back. [`DpSegmenter`] is the paper's explanation-aware DP (§5);
//! `tsexplain-baselines` adapts the §7.2 shape-only baselines (bottom-up,
//! FLUSS, NNSegment) to the same trait so all four strategies are
//! interchangeable per request, end-to-end through the serving API.

use std::time::{Duration, Instant};

use crate::context::SegmentationContext;
use crate::dp::k_segmentation_with;
use crate::elbow::elbow_k;
use crate::error::SegmentError;
use crate::scheme::Segmentation;

/// How the number of segments K is chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KSelection {
    /// Pick K automatically with the elbow method over `1..=max_k`
    /// (paper §6; K capped at 20 for user-perception reasons).
    Auto {
        /// Upper bound on K (paper default: 20).
        max_k: usize,
    },
    /// Use exactly this K.
    Fixed(usize),
}

impl Default for KSelection {
    fn default() -> Self {
        KSelection::Auto { max_k: 20 }
    }
}

/// What one segmentation pass produced: the scheme, the chosen K, the
/// K-cost curve that backed the choice, and the objective at the chosen K
/// (always the paper's explanation-aware `Σ |P_i| · var(P_i)`, so
/// strategies are comparable on one scale regardless of how they cut).
#[derive(Clone, Debug)]
pub struct SegmenterOutcome {
    /// The proposed scheme.
    pub segmentation: Segmentation,
    /// The number of segments of the scheme (equals `segmentation.k()`).
    pub chosen_k: usize,
    /// `[(k, objective)]` for every K the strategy explored. A fixed-K run
    /// has a single entry.
    pub k_variance_curve: Vec<(usize, f64)>,
    /// The objective at the chosen K.
    pub total_variance: f64,
    /// Wall-clock spent inside the strategy's own solver (the DP solve or
    /// the baseline's cut proposal), *excluding* time already accumulated
    /// by the context's cost/explanation timers.
    pub solve_time: Duration,
}

/// One segmentation strategy behind the explanation pipeline (module docs).
pub trait Segmenter {
    /// Short stable identifier (`"dp"`, `"bottom_up"`, `"fluss"`,
    /// `"nnsegment"`) — what `ExplainResult::strategy` reports.
    fn name(&self) -> &'static str;

    /// Proposes a scheme for the series behind `ctx`.
    ///
    /// `positions` are the sorted candidate cut positions including both
    /// endpoints — pre-restricted by sketch selection (O2) or a streaming
    /// refresh. The DP cuts only at candidates; shape-only strategies
    /// segment the full-resolution aggregate and may ignore them.
    fn segment(
        &self,
        ctx: &mut SegmentationContext<'_>,
        positions: &[usize],
        k: KSelection,
    ) -> Result<SegmenterOutcome, SegmentError>;
}

/// The paper's explanation-aware K-Segmentation DP (Eq. 11) — the default
/// strategy. Solves every `K` up to the cap in one pass, which makes the
/// elbow selection free (§6).
#[derive(Clone, Copy, Debug, Default)]
pub struct DpSegmenter;

impl Segmenter for DpSegmenter {
    fn name(&self) -> &'static str {
        "dp"
    }

    fn segment(
        &self,
        ctx: &mut SegmentationContext<'_>,
        positions: &[usize],
        k: KSelection,
    ) -> Result<SegmenterOutcome, SegmentError> {
        let n = ctx.n_points();
        let costs = ctx.compute_costs(positions, None);
        if ctx.is_cancelled() {
            return Err(SegmentError::Cancelled);
        }
        let dp_start = Instant::now(); // tsx-lint: allow(wall-clock, feeds StageTimers only; the latency block is golden-stripped)
        let k_cap = match k {
            KSelection::Auto { max_k } => max_k.min(positions.len() - 1).max(1),
            KSelection::Fixed(k) => k,
        };
        let dp = k_segmentation_with(&costs, k_cap, &ctx.parallel());
        // All-or-nothing: a cancelled solve leaves a truncated table whose
        // cuts would be garbage — surface the typed error instead.
        if ctx.is_cancelled() {
            return Err(SegmentError::Cancelled);
        }
        let curve = dp.k_variance_curve();
        let chosen_k = match k {
            KSelection::Auto { .. } => elbow_k(&curve),
            KSelection::Fixed(k) => k,
        };
        let position_cuts = dp.cuts(chosen_k)?;
        let solve_time = dp_start.elapsed();
        let cuts: Vec<usize> = position_cuts.iter().map(|&pi| positions[pi]).collect();
        Ok(SegmenterOutcome {
            segmentation: Segmentation::new(n, cuts)?,
            chosen_k,
            total_variance: dp.total_cost(chosen_k),
            k_variance_curve: curve,
            solve_time,
        })
    }
}

/// Drives a *shape-only* cut proposer (a closure from `(series, k)` to
/// interior cuts) through the [`Segmenter`] contract: fixed K proposes
/// once; auto K proposes for every `k ≤ max_k`, scores each scheme with
/// the explanation-aware objective, and elbow-selects — the same selection
/// criterion and the same measurement scale as the DP, so only the cut
/// proposal differs between strategies.
///
/// This is the adapter half `tsexplain-baselines` builds on; it lives here
/// so the scoring/selection protocol has exactly one implementation.
pub fn shape_segmenter_outcome(
    ctx: &mut SegmentationContext<'_>,
    k: KSelection,
    mut propose: impl FnMut(&[f64], usize) -> Vec<usize>,
) -> Result<SegmenterOutcome, SegmentError> {
    // The cube outlives the context borrow, so the pre-decoded aggregate
    // row is borrowed directly — no per-request series copy.
    let series: &[f64] = ctx.cube().total_values_slice();
    let n = series.len();
    match k {
        KSelection::Fixed(k) => {
            let start = Instant::now(); // tsx-lint: allow(wall-clock, feeds StageTimers only; the latency block is golden-stripped)
            let cuts = propose(series, k);
            let solve_time = start.elapsed();
            let segmentation = Segmentation::new(n, cuts)?;
            let cost = ctx.objective(&segmentation);
            if ctx.is_cancelled() {
                return Err(SegmentError::Cancelled);
            }
            Ok(SegmenterOutcome {
                chosen_k: segmentation.k(),
                k_variance_curve: vec![(segmentation.k(), cost)],
                total_variance: cost,
                segmentation,
                solve_time,
            })
        }
        KSelection::Auto { max_k } => {
            let cap = max_k.min(n - 1).max(1);
            let mut solve_time = Duration::default();
            let mut schemes = Vec::with_capacity(cap);
            // Proposals stay sequential (proposers memoize shared state —
            // matrix profiles, z-normed scores — across the sweep); the
            // explanation-aware scoring of the proposed schemes is the
            // expensive half and fans out across the parallel context.
            for k in 1..=cap {
                let start = Instant::now(); // tsx-lint: allow(wall-clock, feeds StageTimers only; the latency block is golden-stripped)
                let cuts = propose(series, k);
                solve_time += start.elapsed();
                schemes.push(Segmentation::new(n, cuts)?);
            }
            let costs = ctx.objective_batch(&schemes);
            // A cancelled batch comes back truncated (possibly empty) —
            // bail before the elbow ever sees a partial curve.
            if ctx.is_cancelled() {
                return Err(SegmentError::Cancelled);
            }
            let curve: Vec<(usize, f64)> = (1..=cap).zip(costs).collect();
            let chosen = elbow_k(&curve);
            let idx = curve
                .iter()
                .position(|&(k, _)| k == chosen)
                .expect("elbow picks a curve point");
            let segmentation = schemes.swap_remove(idx);
            Ok(SegmenterOutcome {
                chosen_k: segmentation.k(),
                total_variance: curve[idx].1,
                k_variance_curve: curve,
                segmentation,
                solve_time,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variance::VarianceMetric;
    use tsexplain_cube::{CubeConfig, ExplanationCube};
    use tsexplain_diff::{DiffMetric, TopExplStrategy};
    use tsexplain_relation::{AggQuery, Datum, Field, Relation, Schema};

    /// Two clean phases: NY drives points 0..3, CA drives points 3..6.
    fn cube() -> ExplanationCube {
        let schema = Schema::new(vec![
            Field::dimension("d"),
            Field::dimension("state"),
            Field::measure("v"),
        ])
        .unwrap();
        let ny = [0.0, 10.0, 20.0, 30.0, 30.0, 30.0, 30.0];
        let ca = [5.0, 5.0, 5.0, 5.0, 25.0, 45.0, 65.0];
        let mut b = Relation::builder(schema);
        for (t, (&vny, &vca)) in ny.iter().zip(ca.iter()).enumerate() {
            b.push_row(vec![
                Datum::from(format!("d{t}")),
                Datum::from("NY"),
                Datum::from(vny),
            ])
            .unwrap();
            b.push_row(vec![
                Datum::from(format!("d{t}")),
                Datum::from("CA"),
                Datum::from(vca),
            ])
            .unwrap();
        }
        ExplanationCube::build(
            &b.finish(),
            &AggQuery::sum("d", "v"),
            &CubeConfig::new(["state"]),
        )
        .unwrap()
    }

    fn context(cube: &ExplanationCube) -> SegmentationContext<'_> {
        SegmentationContext::new(
            cube,
            DiffMetric::AbsoluteChange,
            3,
            TopExplStrategy::Exact,
            VarianceMetric::Tse,
        )
    }

    #[test]
    fn dp_finds_the_phase_boundary() {
        let cube = cube();
        let mut ctx = context(&cube);
        let positions: Vec<usize> = (0..7).collect();
        let outcome = DpSegmenter
            .segment(&mut ctx, &positions, KSelection::Fixed(2))
            .unwrap();
        assert_eq!(outcome.segmentation.cuts(), &[3]);
        assert_eq!(outcome.chosen_k, 2);
        assert_eq!(outcome.k_variance_curve.len(), 2);
    }

    #[test]
    fn dp_auto_k_explores_the_curve() {
        let cube = cube();
        let mut ctx = context(&cube);
        let positions: Vec<usize> = (0..7).collect();
        let outcome = DpSegmenter
            .segment(&mut ctx, &positions, KSelection::Auto { max_k: 5 })
            .unwrap();
        assert_eq!(outcome.k_variance_curve.len(), 5);
        assert_eq!(outcome.chosen_k, outcome.segmentation.k());
        // The chosen K's objective is the reported total.
        let (_, v) = outcome.k_variance_curve[outcome.chosen_k - 1];
        assert!((v - outcome.total_variance).abs() < 1e-12);
    }

    #[test]
    fn dp_respects_candidate_positions() {
        let cube = cube();
        let mut ctx = context(&cube);
        let outcome = DpSegmenter
            .segment(&mut ctx, &[0, 2, 6], KSelection::Fixed(2))
            .unwrap();
        assert_eq!(outcome.segmentation.cuts(), &[2]);
    }

    #[test]
    fn shape_driver_scores_with_the_objective() {
        let cube = cube();
        let mut ctx = context(&cube);
        // A proposer that always cuts in the middle of the feasible range.
        let outcome = shape_segmenter_outcome(&mut ctx, KSelection::Fixed(2), |series, _| {
            vec![series.len() / 2]
        })
        .unwrap();
        assert_eq!(outcome.segmentation.cuts(), &[3]);
        let mut ctx2 = context(&cube);
        let expected = ctx2.objective(&outcome.segmentation);
        assert!((outcome.total_variance - expected).abs() < 1e-12);
    }

    #[test]
    fn shape_driver_auto_k_builds_a_curve_and_elbow_selects() {
        let cube = cube();
        let mut ctx = context(&cube);
        let outcome = shape_segmenter_outcome(&mut ctx, KSelection::Auto { max_k: 4 }, |_, k| {
            // Nested proposals: k−1 evenly spread cuts.
            (1..k).map(|i| i * 7 / k).map(|c| c.clamp(1, 5)).collect()
        })
        .unwrap();
        assert_eq!(outcome.k_variance_curve.len(), 4);
        assert_eq!(outcome.chosen_k, outcome.segmentation.k());
        assert!(outcome.total_variance.is_finite());
    }

    #[test]
    fn shape_driver_rejects_invalid_cuts() {
        let cube = cube();
        let mut ctx = context(&cube);
        let err = shape_segmenter_outcome(&mut ctx, KSelection::Fixed(2), |_, _| vec![0]);
        assert!(err.is_err());
    }
}
