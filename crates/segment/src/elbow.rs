/// Picks the elbow of a K-Variance curve (paper §6).
///
/// The curve `[(k, total_variance)]` decreases as K grows; the useful K is
/// where the marginal improvement collapses. Following the Kneedle method
/// the paper cites (its ref.\ 40), both axes are normalized to `[0, 1]` and the
/// point with the maximum distance below the descending diagonal is
/// chosen: `K* = argmax_k [(1 − x_k) − y_k]`.
///
/// (The paper prints the formula as `argmax[total_var(K) − K]`, which for
/// a decreasing normalized curve is always K = 1; we implement the cited
/// Kneedle semantics — see DESIGN.md §4.1.)
///
/// Degenerate cases: a single-point curve returns its K; an all-equal
/// curve returns the smallest K (no structure ⇒ simplest explanation).
pub fn elbow_k(curve: &[(usize, f64)]) -> usize {
    assert!(!curve.is_empty(), "empty K-Variance curve");
    if curve.len() == 1 {
        return curve[0].0;
    }
    let (k_min, k_max) = (curve[0].0 as f64, curve[curve.len() - 1].0 as f64);
    let v_max = curve.iter().map(|&(_, v)| v).fold(f64::MIN, f64::max);
    let v_min = curve.iter().map(|&(_, v)| v).fold(f64::MAX, f64::min);
    if (v_max - v_min).abs() <= 1e-12 || (k_max - k_min).abs() <= 1e-12 {
        return curve[0].0;
    }
    let mut best = (curve[0].0, f64::MIN);
    for &(k, v) in curve {
        let x = (k as f64 - k_min) / (k_max - k_min);
        let y = (v - v_min) / (v_max - v_min);
        let score = (1.0 - x) - y;
        if score > best.1 {
            best = (k, score);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_the_knee_of_a_convex_curve() {
        // Sharp drop until K=4, flat afterwards.
        let curve: Vec<(usize, f64)> = (1..=10)
            .map(|k| {
                let v = if k <= 4 {
                    100.0 - 24.0 * k as f64
                } else {
                    4.0 - 0.2 * k as f64
                };
                (k, v.max(0.0))
            })
            .collect();
        assert_eq!(elbow_k(&curve), 4);
    }

    #[test]
    fn linear_curve_has_no_preference_beyond_ends() {
        // A perfectly linear decrease scores 0 everywhere; the first K wins
        // deterministically.
        let curve: Vec<(usize, f64)> = (1..=5).map(|k| (k, 50.0 - 10.0 * k as f64)).collect();
        assert_eq!(elbow_k(&curve), 1);
    }

    #[test]
    fn single_point_curve() {
        assert_eq!(elbow_k(&[(1, 42.0)]), 1);
    }

    #[test]
    fn flat_curve_prefers_smallest_k() {
        let curve: Vec<(usize, f64)> = (1..=6).map(|k| (k, 7.0)).collect();
        assert_eq!(elbow_k(&curve), 1);
    }

    #[test]
    fn exponential_decay_knee_is_early() {
        let curve: Vec<(usize, f64)> = (1..=20)
            .map(|k| (k, 100.0 * 0.5f64.powi(k as i32 - 1)))
            .collect();
        let k = elbow_k(&curve);
        assert!((2..=5).contains(&k), "elbow at {k}");
    }
}
