/// Segment-cost matrix over an ordered list of candidate cut positions.
///
/// `cost(i, j)` (position indices, `i < j`) is the DP cost
/// `|P| · var(P)` of making one segment out of everything between positions
/// `i` and `j`. Missing entries (outside the sketch band, or skipped by the
/// length constraint) read as `+∞`, which the DP treats as infeasible.
///
/// Two storages are provided because the two pipeline phases have opposite
/// shapes: the sketch-selection phase computes *all* positions but only
/// short segments (banded storage, `O(n·L)`), while the main phase computes
/// *few* positions but all spans (dense triangular storage, `O(|S|²)`).
#[derive(Clone, Debug)]
pub struct CostMatrix {
    n_pos: usize,
    storage: Storage,
}

#[derive(Clone, Debug)]
enum Storage {
    /// Upper-triangular, row-major.
    Dense(Vec<f64>),
    /// Only spans of at most `band` positions.
    Banded { band: usize, data: Vec<f64> },
}

impl CostMatrix {
    /// An all-infinite dense matrix over `n_pos` positions.
    pub fn dense(n_pos: usize) -> Self {
        let entries = n_pos * n_pos.saturating_sub(1) / 2;
        CostMatrix {
            n_pos,
            storage: Storage::Dense(vec![f64::INFINITY; entries]),
        }
    }

    /// An all-infinite banded matrix: spans `j − i ≤ band` only.
    pub fn banded(n_pos: usize, band: usize) -> Self {
        assert!(band >= 1, "band must cover at least unit segments");
        CostMatrix {
            n_pos,
            storage: Storage::Banded {
                band,
                data: vec![f64::INFINITY; n_pos.saturating_sub(1) * band],
            },
        }
    }

    /// Number of candidate positions.
    pub fn n_pos(&self) -> usize {
        self.n_pos
    }

    /// The band width, when banded.
    pub fn band(&self) -> Option<usize> {
        match &self.storage {
            Storage::Dense(_) => None,
            Storage::Banded { band, .. } => Some(*band),
        }
    }

    /// Row-major upper-triangular index — the one place the dense layout
    /// formula lives; both accessors go through it.
    fn dense_index(n_pos: usize, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < n_pos);
        i * (n_pos - 1) - i * (i.saturating_sub(1)) / 2 + (j - i - 1)
    }

    /// The cost of the segment between positions `i` and `j` (`i < j`);
    /// `+∞` when unavailable.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < j && j < self.n_pos);
        match &self.storage {
            Storage::Dense(data) => data[Self::dense_index(self.n_pos, i, j)],
            Storage::Banded { band, data } => {
                if j - i > *band {
                    f64::INFINITY
                } else {
                    data[i * band + (j - i - 1)]
                }
            }
        }
    }

    /// Stores the cost of the segment between positions `i` and `j`.
    ///
    /// # Panics
    /// Panics when a banded matrix is written outside its band.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        debug_assert!(i < j && j < self.n_pos);
        let n_pos = self.n_pos;
        match &mut self.storage {
            Storage::Dense(data) => data[Self::dense_index(n_pos, i, j)] = value,
            Storage::Banded { band, data } => {
                assert!(j - i <= *band, "write outside band: ({i}, {j}) band {band}");
                data[i * *band + (j - i - 1)] = value;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_roundtrip_all_pairs() {
        let n = 7;
        let mut m = CostMatrix::dense(n);
        for i in 0..n {
            for j in i + 1..n {
                m.set(i, j, (i * 10 + j) as f64);
            }
        }
        for i in 0..n {
            for j in i + 1..n {
                assert_eq!(m.get(i, j), (i * 10 + j) as f64, "({i},{j})");
            }
        }
    }

    #[test]
    fn dense_defaults_to_infinity() {
        let m = CostMatrix::dense(4);
        assert!(m.get(0, 3).is_infinite());
    }

    #[test]
    fn banded_roundtrip_within_band() {
        let n = 10;
        let band = 3;
        let mut m = CostMatrix::banded(n, band);
        for i in 0..n {
            for j in i + 1..n.min(i + band + 1) {
                m.set(i, j, (i + j) as f64);
            }
        }
        for i in 0..n {
            for j in i + 1..n {
                if j - i <= band {
                    assert_eq!(m.get(i, j), (i + j) as f64);
                } else {
                    assert!(m.get(i, j).is_infinite());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside band")]
    fn banded_write_outside_band_panics() {
        let mut m = CostMatrix::banded(10, 2);
        m.set(0, 5, 1.0);
    }

    #[test]
    fn band_accessor() {
        assert_eq!(CostMatrix::dense(5).band(), None);
        assert_eq!(CostMatrix::banded(5, 2).band(), Some(2));
    }
}
