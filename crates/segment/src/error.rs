use std::fmt;

/// Errors produced by the segmentation layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SegmentError {
    /// Cut positions were not strictly increasing interior points.
    InvalidCuts(String),
    /// The time series is too short to segment (needs ≥ 2 points).
    TooFewPoints(usize),
    /// No valid scheme exists for the requested K (e.g. K > n − 1).
    InfeasibleK {
        /// Requested number of segments.
        k: usize,
        /// Number of candidate positions available.
        positions: usize,
    },
    /// The request's cancel token tripped mid-segmentation; every partial
    /// result was discarded (all-or-nothing — see `tsexplain-parallel`).
    Cancelled,
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::InvalidCuts(msg) => write!(f, "invalid cut positions: {msg}"),
            SegmentError::TooFewPoints(n) => {
                write!(f, "a time series of {n} point(s) cannot be segmented")
            }
            SegmentError::InfeasibleK { k, positions } => {
                write!(f, "no {k}-segmentation exists over {positions} positions")
            }
            SegmentError::Cancelled => {
                write!(f, "segmentation cancelled before completing")
            }
        }
    }
}

impl std::error::Error for SegmentError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(SegmentError::TooFewPoints(1).to_string().contains('1'));
        let e = SegmentError::InfeasibleK { k: 9, positions: 3 };
        assert!(e.to_string().contains('9'));
    }
}
