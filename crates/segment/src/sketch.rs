use crate::context::SegmentationContext;
use crate::dp::k_segmentation;

/// Parameters of the sketching optimization O2 (§5.3.2).
///
/// Paper defaults: `L = min(0.05·n, 20)` and `|S| = 3n / L`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SketchConfig {
    /// Fraction of `n` bounding the phase-I segment length.
    pub max_len_fraction: f64,
    /// Hard cap on the phase-I segment length `L`.
    pub max_len_cap: usize,
    /// Sketch size factor: `|S| = factor · n / L`.
    pub size_factor: f64,
}

impl Default for SketchConfig {
    fn default() -> Self {
        SketchConfig {
            max_len_fraction: 0.05,
            max_len_cap: 20,
            size_factor: 3.0,
        }
    }
}

impl SketchConfig {
    /// The phase-I length bound `L` for a series of `n` points.
    pub fn max_len(&self, n: usize) -> usize {
        (((self.max_len_fraction * n as f64).floor() as usize).min(self.max_len_cap)).max(2)
    }

    /// The sketch size `|S|` for a series of `n` points.
    pub fn sketch_size(&self, n: usize) -> usize {
        let l = self.max_len(n);
        ((self.size_factor * n as f64) / l as f64).floor() as usize
    }
}

/// Optimization O2, phase I — *sketch selection* (§5.3.2).
///
/// Runs the regular pipeline with every segment's length capped at `L`
/// (reducing the segment count from `O(n²)` to `O(L·n)`) and `K = |S|`;
/// the resulting cut positions are points that short-range evidence already
/// favours as boundaries, and become the only candidate cut positions of
/// the full-range phase II.
///
/// Returns the candidate positions *including both endpoints*, sorted. When
/// the sketch cannot prune anything (`|S| ≥ n − 1`, short series), all
/// positions are returned and phase II degenerates to the exact pipeline.
pub fn select_sketch(ctx: &mut SegmentationContext<'_>, config: &SketchConfig) -> Vec<usize> {
    let n = ctx.n_points();
    debug_assert!(n >= 2);
    let l = config.max_len(n);
    let s = config.sketch_size(n);
    if s + 1 >= n || n <= l {
        return (0..n).collect();
    }

    let positions: Vec<usize> = (0..n).collect();
    let costs = ctx.compute_costs(&positions, Some(l));
    let dp = k_segmentation(&costs, s);
    let k_use = dp.feasible_k_max().min(s);
    if k_use < 2 {
        return (0..n).collect();
    }
    let cuts = dp.cuts(k_use).expect("feasible k");

    let mut out = Vec::with_capacity(cuts.len() + 2);
    out.push(0);
    out.extend(cuts); // position index == point index here
    out.push(n - 1);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variance::VarianceMetric;
    use tsexplain_cube::{CubeConfig, ExplanationCube};
    use tsexplain_diff::{DiffMetric, TopExplStrategy};
    use tsexplain_relation::{AggQuery, Datum, Field, Relation, Schema};

    /// A 60-point series where NY drives the first half and CA the second.
    fn cube() -> ExplanationCube {
        let schema = Schema::new(vec![
            Field::dimension("d"),
            Field::dimension("state"),
            Field::measure("v"),
        ])
        .unwrap();
        let mut b = Relation::builder(schema);
        for t in 0..60 {
            let ny = if t < 30 { 10.0 * t as f64 } else { 290.0 };
            let ca = if t < 30 {
                5.0
            } else {
                5.0 + 8.0 * (t - 30) as f64
            };
            b.push_row(vec![
                Datum::from(format!("d{t:02}")),
                Datum::from("NY"),
                Datum::from(ny),
            ])
            .unwrap();
            b.push_row(vec![
                Datum::from(format!("d{t:02}")),
                Datum::from("CA"),
                Datum::from(ca),
            ])
            .unwrap();
        }
        ExplanationCube::build(
            &b.finish(),
            &AggQuery::sum("d", "v"),
            &CubeConfig::new(["state"]),
        )
        .unwrap()
    }

    #[test]
    fn default_parameters_match_paper() {
        let cfg = SketchConfig::default();
        assert_eq!(cfg.max_len(400), 20);
        assert_eq!(cfg.max_len(100), 5);
        assert_eq!(cfg.sketch_size(400), 60);
        assert_eq!(cfg.sketch_size(100), 60);
    }

    #[test]
    fn short_series_returns_all_positions() {
        let cube = cube();
        let mut ctx = SegmentationContext::new(
            &cube,
            DiffMetric::AbsoluteChange,
            3,
            TopExplStrategy::Exact,
            VarianceMetric::Tse,
        );
        // Default config on n=60: |S| = 3·60/3 = 60 ≥ n−1 → no pruning.
        let sketch = select_sketch(&mut ctx, &SketchConfig::default());
        assert_eq!(sketch.len(), 60);
    }

    #[test]
    fn sketch_prunes_and_keeps_true_cut() {
        let cube = cube();
        let mut ctx = SegmentationContext::new(
            &cube,
            DiffMetric::AbsoluteChange,
            3,
            TopExplStrategy::Exact,
            VarianceMetric::Tse,
        );
        let cfg = SketchConfig {
            max_len_fraction: 0.2,
            max_len_cap: 12,
            size_factor: 3.0,
        };
        // L = 12, |S| = 15 → real pruning with enough slack for the data
        // to place cuts where the contributors change.
        let sketch = select_sketch(&mut ctx, &cfg);
        assert!(sketch.len() < 60, "sketch should prune: {}", sketch.len());
        assert_eq!(*sketch.first().unwrap(), 0);
        assert_eq!(*sketch.last().unwrap(), 59);
        assert!(sketch.windows(2).all(|w| w[0] < w[1]));
        // The regime change at point 29/30 must survive pruning (±2).
        assert!(
            sketch.iter().any(|&p| (28..=32).contains(&p)),
            "true cut missing from sketch {sketch:?}"
        );
    }

    #[test]
    fn sketch_positions_within_bounds() {
        let cube = cube();
        let mut ctx = SegmentationContext::new(
            &cube,
            DiffMetric::AbsoluteChange,
            3,
            TopExplStrategy::Exact,
            VarianceMetric::Tse,
        );
        let cfg = SketchConfig {
            max_len_fraction: 0.1,
            max_len_cap: 6,
            size_factor: 1.5,
        };
        let sketch = select_sketch(&mut ctx, &cfg);
        assert!(sketch.iter().all(|&p| p < 60));
    }
}
