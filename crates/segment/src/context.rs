use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use tsexplain_cube::ExplanationCube;
use tsexplain_diff::{DiffMetric, ScoreContext, TopExplEngine, TopExplStrategy};
use tsexplain_parallel::ParallelCtx;

use crate::cost::CostMatrix;
use crate::ndcg::ExplainedSegment;
use crate::scheme::Segmentation;
use crate::variance::{object_centroid_distance, object_pair_distance, VarianceMetric};

/// Below this many unit objects the object-top derivation runs inline —
/// spawn cost would dwarf the work. Deterministic in the input size, so
/// the parallel/sequential boundary never depends on scheduling.
const PAR_MIN_OBJECTS: usize = 32;

/// Below this many candidate positions the cost matrix runs inline.
const PAR_MIN_POSITIONS: usize = 16;

/// One parallel cost-matrix row: `(pj, cost, served_from_memo)` cells plus
/// the worker engine's derivation count for that row.
type CostRow = (Vec<(usize, f64, bool)>, u64);

/// Below this many points a scheme-scoring batch runs inline.
const PAR_MIN_SCORING_POINTS: usize = 32;

/// Wall-clock accumulators for the two segment-side pipeline stages the
/// paper's latency breakdown separates (Fig. 15): the Cascading Analysts
/// module (b) and the distance/variance/DP module (c).
///
/// The `par_*` fields record the portion of each stage spent inside
/// [`ParallelCtx`] fan-out regions (also included in the stage totals), so
/// callers can report how much of a stage actually ran across the worker
/// set. A parallel region's whole wall-clock is attributed to the stage
/// that owns the region — a parallel cost-matrix region counts under
/// `segmentation` even for the centroid top-m derivations inside it
/// (worker wall-clocks overlap, so a per-module split is not meaningful
/// there); sequential runs keep the exact per-module attribution.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimers {
    /// Time spent deriving top-m explanations (module b).
    pub cascading: Duration,
    /// Time spent on distances, variances and the DP (module c).
    pub segmentation: Duration,
    /// Of `cascading`: wall-clock inside parallel fan-out regions.
    pub par_cascading: Duration,
    /// Of `segmentation`: wall-clock inside parallel fan-out regions.
    pub par_segmentation: Duration,
}

/// Orchestrates segment explanation and cost computation: caches the unit
/// objects' top-explanation lists (§4.1.1 — the atomic units of
/// K-Segmentation), runs the configured top-m strategy per centroid
/// segment, and evaluates the `|P| · var(P)` DP costs under the chosen
/// [`VarianceMetric`].
pub struct SegmentationContext<'a> {
    engine: TopExplEngine<'a>,
    diff_metric: DiffMetric,
    metric: VarianceMetric,
    strategy: TopExplStrategy,
    parallel: ParallelCtx,
    object_tops: Option<Vec<ExplainedSegment>>,
    timers: StageTimers,
    /// Top-m derivations performed by per-worker engines inside parallel
    /// regions; [`SegmentationContext::ca_calls`] adds them to the main
    /// engine's counter so the total is thread-count-independent.
    extra_calls: u64,
    /// Segment-cost memo keyed by point-index pair `(a, b)` — one request
    /// repeatedly prices the same segments (the auto-K proposal sweep, the
    /// sketch band vs. the main DP, the final per-segment description),
    /// and costs are pure functions of the segment, so every repeat is a
    /// lookup instead of a fresh centroid derivation + distance scan.
    memo: HashMap<(usize, usize), f64>,
    /// Disabled via [`SegmentationContext::without_memo`] (testing /
    /// apples-to-apples measurement); costs are identical either way.
    memo_enabled: bool,
    memo_hits: u64,
    memo_misses: u64,
    /// Centroid derivations *avoided* by memo hits. Added back into
    /// [`SegmentationContext::ca_calls`] so that counter stays the
    /// memo-independent workload metric the serving layer reports (and the
    /// golden files pin); the derivations actually performed are
    /// [`SegmentationContext::ca_derivations`].
    hit_calls: u64,
}

impl<'a> SegmentationContext<'a> {
    /// Builds a context over `cube` with the process-default parallel
    /// context (override with [`SegmentationContext::with_parallel`]).
    pub fn new(
        cube: &'a ExplanationCube,
        diff_metric: DiffMetric,
        m: usize,
        strategy: TopExplStrategy,
        metric: VarianceMetric,
    ) -> Self {
        SegmentationContext {
            engine: TopExplEngine::new(cube, diff_metric, m, strategy),
            diff_metric,
            metric,
            strategy,
            parallel: ParallelCtx::from_env(),
            object_tops: None,
            timers: StageTimers::default(),
            extra_calls: 0,
            memo: HashMap::new(),
            memo_enabled: true,
            memo_hits: 0,
            memo_misses: 0,
            hit_calls: 0,
        }
    }

    /// Sets the parallel execution context (builder style). Results are
    /// byte-identical at any thread count — the determinism contract of
    /// `tsexplain-parallel` — so this only changes how fast the costs are
    /// computed, never what they are.
    pub fn with_parallel(mut self, parallel: ParallelCtx) -> Self {
        self.parallel = parallel;
        self
    }

    /// The parallel execution context in use.
    pub fn parallel(&self) -> ParallelCtx {
        self.parallel.clone()
    }

    /// Polls the request's cancellation token (false when none is
    /// attached). Hot loops early-exit on it; the driver then discards
    /// every partial result and errors, so a poll never changes what a
    /// *successful* request returns.
    pub fn is_cancelled(&self) -> bool {
        self.parallel.is_cancelled()
    }

    /// Disables the segment-cost memo (builder style). Costs and reported
    /// `ca_calls` are identical either way — the memo only changes how
    /// many derivations are actually performed — so this exists for tests
    /// and for measuring the memo's effect.
    pub fn without_memo(mut self) -> Self {
        self.memo_enabled = false;
        self
    }

    /// Whether the segment-cost memo is active (callers layering their
    /// own caching — e.g. the eval study's `CachedObjective` — use this
    /// to decide whether they must cache locally instead).
    pub fn memo_enabled(&self) -> bool {
        self.memo_enabled
    }

    /// Segment-cost lookups served from the memo.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// Segment costs computed and inserted into the memo.
    pub fn memo_misses(&self) -> u64 {
        self.memo_misses
    }

    /// Records `n` memo hits, restoring the derivations the hits avoided
    /// into the logical `ca_calls` metric (centroid metrics derive one
    /// top-m list per computed segment cost; all-pair metrics derive none).
    fn record_hits(&mut self, n: u64) {
        self.memo_hits += n;
        if !self.metric.is_all_pair() {
            self.hit_calls += n;
        }
    }

    /// The underlying cube.
    pub fn cube(&self) -> &'a ExplanationCube {
        self.engine.cube()
    }

    /// Number of points `n` in the series.
    pub fn n_points(&self) -> usize {
        self.engine.cube().n_points()
    }

    /// The within-segment variance metric in use.
    pub fn variance_metric(&self) -> VarianceMetric {
        self.metric
    }

    /// The difference metric γ in use.
    pub fn diff_metric(&self) -> DiffMetric {
        self.diff_metric
    }

    /// Accumulated stage timings.
    pub fn timers(&self) -> StageTimers {
        self.timers
    }

    /// Number of top-m derivations the workload *requested* so far: the
    /// main engine's count, plus the per-worker engines of parallel
    /// regions, plus derivations served from the segment-cost memo. By
    /// construction this is independent of both the thread count and the
    /// memo — it is the deterministic workload-shape metric reported as
    /// `PipelineStats::ca_calls`. The derivations actually performed are
    /// [`SegmentationContext::ca_derivations`].
    pub fn ca_calls(&self) -> u64 {
        self.engine.calls() + self.extra_calls + self.hit_calls
    }

    /// Number of top-m derivations actually performed (excludes memo
    /// hits); `ca_calls − ca_derivations` is the work the memo saved.
    pub fn ca_derivations(&self) -> u64 {
        self.engine.calls() + self.extra_calls
    }

    /// Derives (and times) the top-m explanations of an arbitrary segment.
    pub fn explained(&mut self, seg: (usize, usize)) -> ExplainedSegment {
        let start = Instant::now(); // tsx-lint: allow(wall-clock, feeds StageTimers only; the latency block is golden-stripped)
        let top = self.engine.top_m(seg);
        self.timers.cascading += start.elapsed();
        ExplainedSegment::new(seg, top)
    }

    /// Ensures the unit-object top lists are cached. The per-object
    /// derivations are mutually independent, so large inputs fan out over
    /// the parallel context (chunk-ordered, byte-identical to sequential).
    fn ensure_objects(&mut self) {
        if self.object_tops.is_some() {
            return;
        }
        let count = self.n_points().saturating_sub(1);
        let start = Instant::now(); // tsx-lint: allow(wall-clock, feeds StageTimers only; the latency block is golden-stripped)
        let tops: Vec<ExplainedSegment> =
            if self.parallel.is_sequential() || count < PAR_MIN_OBJECTS {
                (0..count)
                    .map(|x| ExplainedSegment::new((x, x + 1), self.engine.top_m((x, x + 1))))
                    .collect()
            } else {
                let cube = self.engine.cube();
                let (diff, m, strategy) = (self.diff_metric, self.engine.m(), self.strategy);
                let parts = self.parallel.run_chunks(count, |range| {
                    let mut engine = TopExplEngine::new(cube, diff, m, strategy);
                    let tops: Vec<ExplainedSegment> = range
                        .map(|x| ExplainedSegment::new((x, x + 1), engine.top_m((x, x + 1))))
                        .collect();
                    vec![(tops, engine.calls())]
                });
                let mut tops = Vec::with_capacity(count);
                for (part, calls) in parts {
                    tops.extend(part);
                    self.extra_calls += calls;
                }
                self.timers.par_cascading += start.elapsed();
                tops
            };
        self.timers.cascading += start.elapsed();
        self.object_tops = Some(tops);
    }

    /// The cached top-explanations of unit object `[p_x, p_{x+1}]`.
    pub fn object_top(&mut self, x: usize) -> ExplainedSegment {
        self.ensure_objects();
        self.object_tops.as_ref().expect("cached")[x].clone()
    }

    /// Computes the DP cost matrix over the candidate cut `positions`
    /// (sorted point indices, first = 0, last = n − 1).
    ///
    /// With `max_len_points = Some(L)`, only segments spanning at most `L`
    /// points are evaluated (the sketch-selection constraint, §5.3.2) and —
    /// when positions are all points — banded storage is used so memory is
    /// `O(n·L)` instead of `O(n²)`.
    pub fn compute_costs(
        &mut self,
        positions: &[usize],
        max_len_points: Option<usize>,
    ) -> CostMatrix {
        debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
        debug_assert_eq!(positions.first(), Some(&0));
        debug_assert_eq!(positions.last(), Some(&(self.n_points() - 1)));
        self.ensure_objects();

        let n_pos = positions.len();
        let dense_positions = n_pos == self.n_points();
        let mut matrix = match (max_len_points, dense_positions) {
            (Some(band), true) => CostMatrix::banded(n_pos, band),
            _ => CostMatrix::dense(n_pos),
        };

        if self.parallel.is_sequential() || n_pos < PAR_MIN_POSITIONS {
            for pi in 0..n_pos {
                // Per-row cancellation poll: a cancelled request stops
                // pricing and returns the (partial, discarded) matrix.
                if self.parallel.is_cancelled() {
                    return matrix;
                }
                for pj in pi + 1..n_pos {
                    let (a, b) = (positions[pi], positions[pj]);
                    if let Some(max_len) = max_len_points {
                        if b - a > max_len {
                            break; // spans only grow with pj
                        }
                    }
                    let cost = self.segment_cost((a, b));
                    matrix.set(pi, pj, cost);
                }
            }
            return matrix;
        }

        // Parallel path: one matrix row per `pi`, rows fanned across the
        // worker chunks. Each worker owns a private top-m engine (top-m
        // derivations are call-independent), every cell's cost is computed
        // by the same [`raw_segment_cost`] the sequential path uses, and
        // the rows are written back in row order — byte-identical output.
        // Workers read (never write) the memo as it stood when the region
        // opened; cells within one call are distinct, so this sees exactly
        // the hits the sequential loop would.
        let start = Instant::now(); // tsx-lint: allow(wall-clock, feeds StageTimers only; the latency block is golden-stripped)
        let cube = self.engine.cube();
        let objects = self.object_tops.as_ref().expect("cached");
        let memo = self.memo_enabled.then_some(&self.memo);
        let (diff, metric, m, strategy) = (
            self.diff_metric,
            self.metric,
            self.engine.m(),
            self.strategy,
        );
        let cancel = self.parallel.cancel_token().cloned();
        let rows: Vec<CostRow> = self.parallel.run_chunks(n_pos, |range| {
            let mut engine = TopExplEngine::new(cube, diff, m, strategy);
            range
                .map(|pi| {
                    let before = engine.calls();
                    let mut cells = Vec::new();
                    // Per-row poll inside the chunk: workers stop pricing
                    // promptly; the whole region's output is discarded by
                    // the erroring request.
                    if cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                        return (cells, 0);
                    }
                    for pj in pi + 1..n_pos {
                        let (a, b) = (positions[pi], positions[pj]);
                        if let Some(max_len) = max_len_points {
                            if b - a > max_len {
                                break; // spans only grow with pj
                            }
                        }
                        if let Some(&cost) = memo.and_then(|memo| memo.get(&(a, b))) {
                            cells.push((pj, cost, true));
                            continue;
                        }
                        let (cost, _) =
                            raw_segment_cost(cube, diff, metric, objects, &mut engine, (a, b));
                        cells.push((pj, cost, false));
                    }
                    (cells, engine.calls() - before)
                })
                .collect()
        });
        for (pi, (cells, calls)) in rows.into_iter().enumerate() {
            self.extra_calls += calls;
            for (pj, cost, from_memo) in cells {
                let seg = (positions[pi], positions[pj]);
                if seg.1 - seg.0 > 1 {
                    if from_memo {
                        self.record_hits(1);
                    } else if self.memo_enabled {
                        self.memo.insert(seg, cost);
                        self.memo_misses += 1;
                    }
                }
                matrix.set(pi, pj, cost);
            }
        }
        let elapsed = start.elapsed();
        self.timers.segmentation += elapsed;
        self.timers.par_segmentation += elapsed;
        matrix
    }

    /// The DP cost `|P| · var(P)` of one segment `(a, b)` (point indices)
    /// under the context's variance metric.
    ///
    /// For the centroid structure (Eq. 7) this is the *sum* of
    /// object↔centroid distances; for the all-pair structure (Eq. 10) it is
    /// `|P|` times the average over all ordered object pairs.
    pub fn segment_cost(&mut self, seg: (usize, usize)) -> f64 {
        let (a, b) = seg;
        debug_assert!(a < b);
        if b - a == 1 {
            return 0.0; // a single object is its own centroid
        }
        // Cancellation poll: bail before deriving or touching the memo,
        // so no placeholder cost and no counter bump can ever leak out of
        // a cancelled (and therefore erroring) request.
        if self.parallel.is_cancelled() {
            return 0.0;
        }
        if self.memo_enabled {
            if let Some(&cost) = self.memo.get(&seg) {
                self.record_hits(1);
                return cost;
            }
        }
        self.ensure_objects();
        let start = Instant::now(); // tsx-lint: allow(wall-clock, feeds StageTimers only; the latency block is golden-stripped)
        let cube = self.engine.cube();
        let objects = self.object_tops.as_ref().expect("cached");
        let (cost, centroid_time) = raw_segment_cost(
            cube,
            self.diff_metric,
            self.metric,
            objects,
            &mut self.engine,
            seg,
        );
        // Preserve the module attribution of the latency breakdown
        // (Fig. 15): centroid top-m derivation is Cascading-Analysts work
        // (module b), distances are segmentation work (module c).
        self.timers.cascading += centroid_time;
        self.timers.segmentation += start.elapsed().saturating_sub(centroid_time);
        if self.memo_enabled {
            self.memo.insert(seg, cost);
            self.memo_misses += 1;
        }
        cost
    }

    /// The paper's objective (Problem 1): `Σ_i |P_i| · var(P_i)` of a
    /// scheme. This is what Table 7 reports as the segmentation quality.
    pub fn objective(&mut self, scheme: &Segmentation) -> f64 {
        scheme
            .segments()
            .into_iter()
            .map(|seg| self.segment_cost(seg))
            .sum()
    }

    /// Scores many schemes at once — the auto-K candidate sweep of the
    /// shape-strategy driver. The returned vector is in input order and
    /// byte-identical to scoring each scheme with
    /// [`SegmentationContext::objective`].
    ///
    /// With the memo on (the default), each *unique* segment across the
    /// batch is priced exactly once — nested auto-K proposals share most
    /// of their segments, which is where the sweep's redundant centroid
    /// derivations used to go — and the unique set fans out across the
    /// parallel context. Per-scheme sums then read the memo in input
    /// order, so the summation order (and hence every f64 bit) matches
    /// the unmemoized path.
    pub fn objective_batch(&mut self, schemes: &[Segmentation]) -> Vec<f64> {
        if !self.memo_enabled {
            return self.objective_batch_unmemoized(schemes);
        }
        // The unique segments the memo cannot answer yet, in first-seen
        // order (deterministic fan-out chunking).
        let mut pending: Vec<(usize, usize)> = Vec::new();
        let mut pending_set: HashSet<(usize, usize)> = HashSet::new();
        for scheme in schemes {
            for seg in scheme.segments() {
                if seg.1 - seg.0 > 1 && !self.memo.contains_key(&seg) && pending_set.insert(seg) {
                    pending.push(seg);
                }
            }
        }
        if self.parallel.is_sequential()
            || pending.len() < 2
            || self.n_points() < PAR_MIN_SCORING_POINTS
        {
            for &seg in &pending {
                let _ = self.segment_cost(seg); // computes, inserts, counts the miss
            }
        } else {
            self.ensure_objects();
            let start = Instant::now(); // tsx-lint: allow(wall-clock, feeds StageTimers only; the latency block is golden-stripped)
            let cube = self.engine.cube();
            let objects = self.object_tops.as_ref().expect("cached");
            let (diff, metric, m, strategy) = (
                self.diff_metric,
                self.metric,
                self.engine.m(),
                self.strategy,
            );
            let cancel = self.parallel.cancel_token().cloned();
            let parts: Vec<(f64, u64)> = self.parallel.run_chunks(pending.len(), |range| {
                let mut engine = TopExplEngine::new(cube, diff, m, strategy);
                range
                    .map(|i| {
                        if cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                            return (0.0, 0); // discarded by the erroring request
                        }
                        let before = engine.calls();
                        let (cost, _) =
                            raw_segment_cost(cube, diff, metric, objects, &mut engine, pending[i]);
                        (cost, engine.calls() - before)
                    })
                    .collect()
            });
            for (&seg, (cost, calls)) in pending.iter().zip(parts) {
                self.memo.insert(seg, cost);
                self.memo_misses += 1;
                self.extra_calls += calls;
            }
            let elapsed = start.elapsed();
            self.timers.segmentation += elapsed;
            self.timers.par_segmentation += elapsed;
        }
        // A cancelled sweep may have priced only a prefix of `pending`
        // (zip truncation above, or segment_cost's early return): the
        // read-back below would miss memo entries, so discard the batch —
        // the driver surfaces the cancellation as a typed error.
        if self.parallel.is_cancelled() {
            return Vec::new();
        }
        // Each scheme's sum folds its segment costs in segment order —
        // the same fold the unmemoized path performs. The first occurrence
        // of a segment priced above was already charged as a miss; every
        // other occurrence is a memo hit.
        let mut charged = pending_set;
        let mut out = Vec::with_capacity(schemes.len());
        for scheme in schemes {
            let mut sum = 0.0;
            for seg in scheme.segments() {
                let cost = if seg.1 - seg.0 == 1 {
                    0.0
                } else {
                    let cost = self.memo[&seg];
                    if !charged.remove(&seg) {
                        self.record_hits(1);
                    }
                    cost
                };
                sum += cost;
            }
            out.push(sum);
        }
        out
    }

    /// The memo-off scoring path: every scheme prices every segment from
    /// scratch (what `objective_batch` did before the memo existed) —
    /// kept so disabling the memo reproduces the historical work profile
    /// exactly, which is what the memo-invisibility tests compare against.
    fn objective_batch_unmemoized(&mut self, schemes: &[Segmentation]) -> Vec<f64> {
        if self.parallel.is_sequential()
            || schemes.len() < 2
            || self.n_points() < PAR_MIN_SCORING_POINTS
        {
            return schemes.iter().map(|s| self.objective(s)).collect();
        }
        self.ensure_objects();
        let start = Instant::now(); // tsx-lint: allow(wall-clock, feeds StageTimers only; the latency block is golden-stripped)
        let cube = self.engine.cube();
        let objects = self.object_tops.as_ref().expect("cached");
        let (diff, metric, m, strategy) = (
            self.diff_metric,
            self.metric,
            self.engine.m(),
            self.strategy,
        );
        let cancel = self.parallel.cancel_token().cloned();
        let parts: Vec<(f64, u64)> = self.parallel.run_chunks(schemes.len(), |range| {
            let mut engine = TopExplEngine::new(cube, diff, m, strategy);
            range
                .map(|i| {
                    if cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                        return (0.0, 0); // discarded by the erroring request
                    }
                    let before = engine.calls();
                    let cost: f64 = schemes[i]
                        .segments()
                        .into_iter()
                        .map(|seg| {
                            raw_segment_cost(cube, diff, metric, objects, &mut engine, seg).0
                        })
                        .sum();
                    (cost, engine.calls() - before)
                })
                .collect()
        });
        let mut out = Vec::with_capacity(schemes.len());
        for (cost, calls) in parts {
            out.push(cost);
            self.extra_calls += calls;
        }
        let elapsed = start.elapsed();
        self.timers.segmentation += elapsed;
        self.timers.par_segmentation += elapsed;
        out
    }
}

/// The DP cost `|P| · var(P)` of one segment under `metric` — the one
/// implementation both the sequential [`SegmentationContext::segment_cost`]
/// and every parallel worker share, so parallel costs cannot drift from
/// sequential ones. Returns the cost plus the wall-clock spent deriving
/// the centroid's top-m list (module-b work, so sequential callers can
/// attribute it to the cascading timer).
///
/// For the centroid structure (Eq. 7) this is the *sum* of
/// object↔centroid distances (the centroid's top-m list is derived on
/// `engine`); for the all-pair structure (Eq. 10) it is `|P|` times the
/// average over all ordered object pairs.
fn raw_segment_cost(
    cube: &ExplanationCube,
    diff_metric: DiffMetric,
    metric: VarianceMetric,
    objects: &[ExplainedSegment],
    engine: &mut TopExplEngine<'_>,
    seg: (usize, usize),
) -> (f64, Duration) {
    let (a, b) = seg;
    let len = b - a;
    if len == 1 {
        return (0.0, Duration::default()); // a single object is its own centroid
    }
    let ctx = ScoreContext::new(cube, diff_metric);
    if metric.is_all_pair() {
        let mut sum = 0.0;
        for x in a..b {
            for y in x + 1..b {
                sum += object_pair_distance(&ctx, &objects[x], &objects[y], metric);
            }
        }
        // AVG over the l² ordered pairs (diagonal is 0, symmetric pairs
        // counted twice), scaled by |P| = l.
        let l = len as f64;
        (l * (2.0 * sum / (l * l)), Duration::default())
    } else {
        let centroid_start = Instant::now(); // tsx-lint: allow(wall-clock, feeds StageTimers only; the latency block is golden-stripped)
        let centroid = ExplainedSegment::new(seg, engine.top_m(seg));
        let centroid_time = centroid_start.elapsed();
        let mut cost = 0.0;
        #[allow(clippy::needless_range_loop)] // point indices, not iteration
        for x in a..b {
            cost += object_centroid_distance(&ctx, &objects[x], &centroid, metric);
        }
        (cost, centroid_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsexplain_cube::CubeConfig;
    use tsexplain_relation::{AggQuery, Datum, Field, Relation, Schema};

    /// Two clean phases: NY drives objects 0..3, CA drives objects 3..6.
    fn cube() -> ExplanationCube {
        let schema = Schema::new(vec![
            Field::dimension("d"),
            Field::dimension("state"),
            Field::measure("v"),
        ])
        .unwrap();
        let ny = [0.0, 10.0, 20.0, 30.0, 30.0, 30.0, 30.0];
        let ca = [5.0, 5.0, 5.0, 5.0, 25.0, 45.0, 65.0];
        let mut b = Relation::builder(schema);
        for (t, (&vny, &vca)) in ny.iter().zip(ca.iter()).enumerate() {
            b.push_row(vec![
                Datum::from(format!("d{t}")),
                Datum::from("NY"),
                Datum::from(vny),
            ])
            .unwrap();
            b.push_row(vec![
                Datum::from(format!("d{t}")),
                Datum::from("CA"),
                Datum::from(vca),
            ])
            .unwrap();
        }
        ExplanationCube::build(
            &b.finish(),
            &AggQuery::sum("d", "v"),
            &CubeConfig::new(["state"]),
        )
        .unwrap()
    }

    fn context(cube: &ExplanationCube, metric: VarianceMetric) -> SegmentationContext<'_> {
        SegmentationContext::new(
            cube,
            DiffMetric::AbsoluteChange,
            3,
            TopExplStrategy::Exact,
            metric,
        )
    }

    #[test]
    fn unit_segments_cost_zero() {
        let cube = cube();
        let mut ctx = context(&cube, VarianceMetric::Tse);
        for x in 0..cube.n_points() - 1 {
            assert_eq!(ctx.segment_cost((x, x + 1)), 0.0);
        }
    }

    #[test]
    fn coherent_segment_cheaper_than_mixed() {
        let cube = cube();
        let mut ctx = context(&cube, VarianceMetric::Tse);
        let coherent = ctx.segment_cost((0, 3));
        let mixed = ctx.segment_cost((1, 5));
        assert!(
            coherent < mixed,
            "coherent {coherent} should be < mixed {mixed}"
        );
    }

    #[test]
    fn objective_prefers_true_split() {
        let cube = cube();
        let mut ctx = context(&cube, VarianceMetric::Tse);
        let good = Segmentation::new(7, vec![3]).unwrap();
        let bad = Segmentation::new(7, vec![1]).unwrap();
        assert!(ctx.objective(&good) < ctx.objective(&bad));
    }

    #[test]
    fn cost_matrix_matches_individual_costs() {
        let cube = cube();
        let mut ctx = context(&cube, VarianceMetric::Tse);
        let positions: Vec<usize> = (0..7).collect();
        let m = ctx.compute_costs(&positions, None);
        for a in 0..7 {
            for b in a + 1..7 {
                assert!((m.get(a, b) - ctx.segment_cost((a, b))).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn banded_costs_skip_long_segments() {
        let cube = cube();
        let mut ctx = context(&cube, VarianceMetric::Tse);
        let positions: Vec<usize> = (0..7).collect();
        let m = ctx.compute_costs(&positions, Some(2));
        assert_eq!(m.band(), Some(2));
        assert!(m.get(0, 2).is_finite());
        assert!(m.get(0, 3).is_infinite());
    }

    #[test]
    fn sparse_positions_dense_matrix() {
        let cube = cube();
        let mut ctx = context(&cube, VarianceMetric::Tse);
        let positions = vec![0, 3, 6];
        let m = ctx.compute_costs(&positions, None);
        assert_eq!(m.n_pos(), 3);
        assert!(m.get(0, 1).is_finite());
        assert!((m.get(0, 2) - ctx.segment_cost((0, 6))).abs() < 1e-12);
    }

    #[test]
    fn allpair_cost_is_finite_and_nonnegative() {
        let cube = cube();
        for metric in [VarianceMetric::AllPair, VarianceMetric::SAllPair] {
            let mut ctx = context(&cube, metric);
            for seg in [(0usize, 2usize), (0, 6), (2, 5)] {
                let c = ctx.segment_cost(seg);
                assert!(c.is_finite() && c >= 0.0, "{metric}: {c}");
            }
        }
    }

    #[test]
    fn timers_accumulate() {
        let cube = cube();
        let mut ctx = context(&cube, VarianceMetric::Tse);
        let _ = ctx.segment_cost((0, 6));
        assert!(ctx.ca_calls() > 0);
    }

    /// A wider fixture (40 points, above every parallel threshold) so the
    /// parallel paths genuinely fan out.
    fn wide_cube() -> ExplanationCube {
        let schema = Schema::new(vec![
            Field::dimension("d"),
            Field::dimension("state"),
            Field::measure("v"),
        ])
        .unwrap();
        let mut b = Relation::builder(schema);
        for t in 0..40i64 {
            let ny = if t < 20 { 3.0 * t as f64 } else { 60.0 };
            let ca = if t < 20 {
                4.0
            } else {
                4.0 + 5.0 * (t - 20) as f64
            };
            for (s, v) in [("NY", ny), ("CA", ca)] {
                b.push_row(vec![Datum::Attr(t.into()), Datum::from(s), Datum::from(v)])
                    .unwrap();
            }
        }
        ExplanationCube::build(
            &b.finish(),
            &AggQuery::sum("d", "v"),
            &CubeConfig::new(["state"]),
        )
        .unwrap()
    }

    #[test]
    fn parallel_costs_and_calls_match_sequential_exactly() {
        let cube = wide_cube();
        let positions: Vec<usize> = (0..cube.n_points()).collect();
        for metric in [VarianceMetric::Tse, VarianceMetric::AllPair] {
            let mut seq = context(&cube, metric).with_parallel(ParallelCtx::sequential());
            let reference = seq.compute_costs(&positions, None);
            for threads in [2, 8] {
                let mut par = context(&cube, metric).with_parallel(ParallelCtx::new(threads));
                let got = par.compute_costs(&positions, None);
                for a in 0..positions.len() {
                    for b in a + 1..positions.len() {
                        let (r, g) = (reference.get(a, b), got.get(a, b));
                        assert!(
                            r == g || (r.is_infinite() && g.is_infinite()),
                            "{metric} t={threads} cell ({a},{b}): {r} vs {g}"
                        );
                    }
                }
                assert_eq!(par.ca_calls(), seq.ca_calls(), "{metric} t={threads}");
            }
        }
    }

    #[test]
    fn parallel_objective_batch_matches_sequential() {
        let cube = wide_cube();
        let n = cube.n_points();
        let schemes: Vec<Segmentation> = (1..=8)
            .map(|k| Segmentation::new(n, (1..k).map(|i| i * n / k).collect::<Vec<_>>()).unwrap())
            .collect();
        let mut seq = context(&cube, VarianceMetric::Tse).with_parallel(ParallelCtx::sequential());
        let reference = seq.objective_batch(&schemes);
        for threads in [2, 8] {
            let mut par =
                context(&cube, VarianceMetric::Tse).with_parallel(ParallelCtx::new(threads));
            assert_eq!(par.objective_batch(&schemes), reference, "t={threads}");
            assert_eq!(par.ca_calls(), seq.ca_calls(), "t={threads}");
        }
    }

    /// Nested auto-K-style proposals: k−1 evenly spread cuts for every k,
    /// so many segments recur across the sweep — the memo's target shape.
    fn nested_schemes(n: usize, max_k: usize) -> Vec<Segmentation> {
        (1..=max_k)
            .map(|k| {
                let cuts: Vec<usize> = (1..k)
                    .map(|i| (i * n / k).clamp(1, n - 2))
                    .collect::<std::collections::BTreeSet<_>>()
                    .into_iter()
                    .collect();
                Segmentation::new(n, cuts).unwrap()
            })
            .collect()
    }

    #[test]
    fn memo_is_invisible_in_costs_but_cuts_derivations() {
        let cube = wide_cube();
        let n = cube.n_points();
        let schemes = nested_schemes(n, 8);
        let mut with_memo = context(&cube, VarianceMetric::Tse);
        let mut without = context(&cube, VarianceMetric::Tse).without_memo();
        let memo_costs = with_memo.objective_batch(&schemes);
        let plain_costs = without.objective_batch(&schemes);
        // Bit-identical objectives...
        for (a, b) in memo_costs.iter().zip(&plain_costs) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // ...and an identical logical workload metric...
        assert_eq!(with_memo.ca_calls(), without.ca_calls());
        // ...while strictly fewer derivations were actually performed.
        assert!(
            with_memo.ca_derivations() < without.ca_derivations(),
            "memo {} vs plain {}",
            with_memo.ca_derivations(),
            without.ca_derivations()
        );
        assert!(with_memo.memo_hits() > 0);
        assert_eq!(without.memo_hits(), 0);
        // Re-pricing a segment from the sweep is a pure hit.
        let before = with_memo.ca_derivations();
        let direct = with_memo.segment_cost(schemes[1].segments()[0]);
        assert_eq!(
            direct.to_bits(),
            with_memo.memo[&schemes[1].segments()[0]].to_bits()
        );
        assert_eq!(with_memo.ca_derivations(), before);
    }

    #[test]
    fn memo_counters_are_thread_count_independent() {
        let cube = wide_cube();
        let schemes = nested_schemes(cube.n_points(), 8);
        let mut seq = context(&cube, VarianceMetric::Tse).with_parallel(ParallelCtx::sequential());
        let reference = seq.objective_batch(&schemes);
        for threads in [2, 8] {
            let mut par =
                context(&cube, VarianceMetric::Tse).with_parallel(ParallelCtx::new(threads));
            let got = par.objective_batch(&schemes);
            for (a, b) in got.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "t={threads}");
            }
            assert_eq!(par.ca_calls(), seq.ca_calls(), "t={threads}");
            assert_eq!(par.memo_hits(), seq.memo_hits(), "t={threads}");
            assert_eq!(par.memo_misses(), seq.memo_misses(), "t={threads}");
        }
    }

    #[test]
    fn cost_matrix_populates_the_memo_for_later_pricing() {
        let cube = cube();
        let mut ctx = context(&cube, VarianceMetric::Tse);
        let positions: Vec<usize> = (0..7).collect();
        let _ = ctx.compute_costs(&positions, None);
        let misses = ctx.memo_misses();
        assert!(misses > 0);
        let derivations = ctx.ca_derivations();
        // Every multi-object span is now priced; re-asking costs nothing.
        let _ = ctx.segment_cost((0, 6));
        let _ = ctx.segment_cost((2, 5));
        assert_eq!(ctx.ca_derivations(), derivations);
        assert_eq!(ctx.memo_misses(), misses);
        assert_eq!(ctx.memo_hits(), 2);
    }

    #[test]
    fn parallel_timers_record_fanout_regions() {
        let cube = wide_cube();
        let positions: Vec<usize> = (0..cube.n_points()).collect();
        let mut ctx = context(&cube, VarianceMetric::Tse).with_parallel(ParallelCtx::new(4));
        let _ = ctx.compute_costs(&positions, None);
        let timers = ctx.timers();
        assert!(timers.par_segmentation <= timers.segmentation);
        assert!(timers.par_segmentation.as_nanos() > 0);
        assert!(timers.par_cascading <= timers.cascading);
    }
}
