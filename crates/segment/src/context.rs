use std::time::{Duration, Instant};

use tsexplain_cube::ExplanationCube;
use tsexplain_diff::{DiffMetric, ScoreContext, TopExplEngine, TopExplStrategy};

use crate::cost::CostMatrix;
use crate::ndcg::ExplainedSegment;
use crate::scheme::Segmentation;
use crate::variance::{object_centroid_distance, object_pair_distance, VarianceMetric};

/// Wall-clock accumulators for the two segment-side pipeline stages the
/// paper's latency breakdown separates (Fig. 15): the Cascading Analysts
/// module (b) and the distance/variance/DP module (c).
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimers {
    /// Time spent deriving top-m explanations (module b).
    pub cascading: Duration,
    /// Time spent on distances, variances and the DP (module c).
    pub segmentation: Duration,
}

/// Orchestrates segment explanation and cost computation: caches the unit
/// objects' top-explanation lists (§4.1.1 — the atomic units of
/// K-Segmentation), runs the configured top-m strategy per centroid
/// segment, and evaluates the `|P| · var(P)` DP costs under the chosen
/// [`VarianceMetric`].
pub struct SegmentationContext<'a> {
    engine: TopExplEngine<'a>,
    diff_metric: DiffMetric,
    metric: VarianceMetric,
    object_tops: Option<Vec<ExplainedSegment>>,
    timers: StageTimers,
}

impl<'a> SegmentationContext<'a> {
    /// Builds a context over `cube`.
    pub fn new(
        cube: &'a ExplanationCube,
        diff_metric: DiffMetric,
        m: usize,
        strategy: TopExplStrategy,
        metric: VarianceMetric,
    ) -> Self {
        SegmentationContext {
            engine: TopExplEngine::new(cube, diff_metric, m, strategy),
            diff_metric,
            metric,
            object_tops: None,
            timers: StageTimers::default(),
        }
    }

    /// The underlying cube.
    pub fn cube(&self) -> &'a ExplanationCube {
        self.engine.cube()
    }

    /// Number of points `n` in the series.
    pub fn n_points(&self) -> usize {
        self.engine.cube().n_points()
    }

    /// The within-segment variance metric in use.
    pub fn variance_metric(&self) -> VarianceMetric {
        self.metric
    }

    /// The difference metric γ in use.
    pub fn diff_metric(&self) -> DiffMetric {
        self.diff_metric
    }

    /// Accumulated stage timings.
    pub fn timers(&self) -> StageTimers {
        self.timers
    }

    /// Number of top-m derivations performed so far.
    pub fn ca_calls(&self) -> u64 {
        self.engine.calls()
    }

    /// Derives (and times) the top-m explanations of an arbitrary segment.
    pub fn explained(&mut self, seg: (usize, usize)) -> ExplainedSegment {
        let start = Instant::now();
        let top = self.engine.top_m(seg);
        self.timers.cascading += start.elapsed();
        ExplainedSegment::new(seg, top)
    }

    /// Ensures the unit-object top lists are cached.
    fn ensure_objects(&mut self) {
        if self.object_tops.is_none() {
            let n = self.n_points();
            let start = Instant::now();
            let tops: Vec<ExplainedSegment> = (0..n.saturating_sub(1))
                .map(|x| ExplainedSegment::new((x, x + 1), self.engine.top_m((x, x + 1))))
                .collect();
            self.timers.cascading += start.elapsed();
            self.object_tops = Some(tops);
        }
    }

    /// The cached top-explanations of unit object `[p_x, p_{x+1}]`.
    pub fn object_top(&mut self, x: usize) -> ExplainedSegment {
        self.ensure_objects();
        self.object_tops.as_ref().expect("cached")[x].clone()
    }

    /// Computes the DP cost matrix over the candidate cut `positions`
    /// (sorted point indices, first = 0, last = n − 1).
    ///
    /// With `max_len_points = Some(L)`, only segments spanning at most `L`
    /// points are evaluated (the sketch-selection constraint, §5.3.2) and —
    /// when positions are all points — banded storage is used so memory is
    /// `O(n·L)` instead of `O(n²)`.
    pub fn compute_costs(
        &mut self,
        positions: &[usize],
        max_len_points: Option<usize>,
    ) -> CostMatrix {
        debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
        debug_assert_eq!(positions.first(), Some(&0));
        debug_assert_eq!(positions.last(), Some(&(self.n_points() - 1)));
        self.ensure_objects();

        let n_pos = positions.len();
        let dense_positions = n_pos == self.n_points();
        let mut matrix = match (max_len_points, dense_positions) {
            (Some(band), true) => CostMatrix::banded(n_pos, band),
            _ => CostMatrix::dense(n_pos),
        };

        for pi in 0..n_pos {
            for pj in pi + 1..n_pos {
                let (a, b) = (positions[pi], positions[pj]);
                if let Some(max_len) = max_len_points {
                    if b - a > max_len {
                        break; // spans only grow with pj
                    }
                }
                let cost = self.segment_cost((a, b));
                matrix.set(pi, pj, cost);
            }
        }
        matrix
    }

    /// The DP cost `|P| · var(P)` of one segment `(a, b)` (point indices)
    /// under the context's variance metric.
    ///
    /// For the centroid structure (Eq. 7) this is the *sum* of
    /// object↔centroid distances; for the all-pair structure (Eq. 10) it is
    /// `|P|` times the average over all ordered object pairs.
    pub fn segment_cost(&mut self, seg: (usize, usize)) -> f64 {
        let (a, b) = seg;
        debug_assert!(a < b);
        let len = b - a;
        if len == 1 {
            return 0.0; // a single object is its own centroid
        }
        self.ensure_objects();
        if self.metric.is_all_pair() {
            let start = Instant::now();
            let ctx = ScoreContext::new(self.engine.cube(), self.diff_metric);
            let objects = self.object_tops.as_ref().expect("cached");
            let mut sum = 0.0;
            for x in a..b {
                for y in x + 1..b {
                    sum += object_pair_distance(&ctx, &objects[x], &objects[y], self.metric);
                }
            }
            // AVG over the l² ordered pairs (diagonal is 0, symmetric pairs
            // counted twice), scaled by |P| = l.
            let l = len as f64;
            let cost = l * (2.0 * sum / (l * l));
            self.timers.segmentation += start.elapsed();
            cost
        } else {
            let centroid = self.explained(seg);
            let start = Instant::now();
            let ctx = ScoreContext::new(self.engine.cube(), self.diff_metric);
            let objects = self.object_tops.as_ref().expect("cached");
            let mut cost = 0.0;
            #[allow(clippy::needless_range_loop)] // point indices, not iteration
            for x in a..b {
                cost += object_centroid_distance(&ctx, &objects[x], &centroid, self.metric);
            }
            self.timers.segmentation += start.elapsed();
            cost
        }
    }

    /// The paper's objective (Problem 1): `Σ_i |P_i| · var(P_i)` of a
    /// scheme. This is what Table 7 reports as the segmentation quality.
    pub fn objective(&mut self, scheme: &Segmentation) -> f64 {
        scheme
            .segments()
            .into_iter()
            .map(|seg| self.segment_cost(seg))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsexplain_cube::CubeConfig;
    use tsexplain_relation::{AggQuery, Datum, Field, Relation, Schema};

    /// Two clean phases: NY drives objects 0..3, CA drives objects 3..6.
    fn cube() -> ExplanationCube {
        let schema = Schema::new(vec![
            Field::dimension("d"),
            Field::dimension("state"),
            Field::measure("v"),
        ])
        .unwrap();
        let ny = [0.0, 10.0, 20.0, 30.0, 30.0, 30.0, 30.0];
        let ca = [5.0, 5.0, 5.0, 5.0, 25.0, 45.0, 65.0];
        let mut b = Relation::builder(schema);
        for (t, (&vny, &vca)) in ny.iter().zip(ca.iter()).enumerate() {
            b.push_row(vec![
                Datum::from(format!("d{t}")),
                Datum::from("NY"),
                Datum::from(vny),
            ])
            .unwrap();
            b.push_row(vec![
                Datum::from(format!("d{t}")),
                Datum::from("CA"),
                Datum::from(vca),
            ])
            .unwrap();
        }
        ExplanationCube::build(
            &b.finish(),
            &AggQuery::sum("d", "v"),
            &CubeConfig::new(["state"]),
        )
        .unwrap()
    }

    fn context(cube: &ExplanationCube, metric: VarianceMetric) -> SegmentationContext<'_> {
        SegmentationContext::new(
            cube,
            DiffMetric::AbsoluteChange,
            3,
            TopExplStrategy::Exact,
            metric,
        )
    }

    #[test]
    fn unit_segments_cost_zero() {
        let cube = cube();
        let mut ctx = context(&cube, VarianceMetric::Tse);
        for x in 0..cube.n_points() - 1 {
            assert_eq!(ctx.segment_cost((x, x + 1)), 0.0);
        }
    }

    #[test]
    fn coherent_segment_cheaper_than_mixed() {
        let cube = cube();
        let mut ctx = context(&cube, VarianceMetric::Tse);
        let coherent = ctx.segment_cost((0, 3));
        let mixed = ctx.segment_cost((1, 5));
        assert!(
            coherent < mixed,
            "coherent {coherent} should be < mixed {mixed}"
        );
    }

    #[test]
    fn objective_prefers_true_split() {
        let cube = cube();
        let mut ctx = context(&cube, VarianceMetric::Tse);
        let good = Segmentation::new(7, vec![3]).unwrap();
        let bad = Segmentation::new(7, vec![1]).unwrap();
        assert!(ctx.objective(&good) < ctx.objective(&bad));
    }

    #[test]
    fn cost_matrix_matches_individual_costs() {
        let cube = cube();
        let mut ctx = context(&cube, VarianceMetric::Tse);
        let positions: Vec<usize> = (0..7).collect();
        let m = ctx.compute_costs(&positions, None);
        for a in 0..7 {
            for b in a + 1..7 {
                assert!((m.get(a, b) - ctx.segment_cost((a, b))).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn banded_costs_skip_long_segments() {
        let cube = cube();
        let mut ctx = context(&cube, VarianceMetric::Tse);
        let positions: Vec<usize> = (0..7).collect();
        let m = ctx.compute_costs(&positions, Some(2));
        assert_eq!(m.band(), Some(2));
        assert!(m.get(0, 2).is_finite());
        assert!(m.get(0, 3).is_infinite());
    }

    #[test]
    fn sparse_positions_dense_matrix() {
        let cube = cube();
        let mut ctx = context(&cube, VarianceMetric::Tse);
        let positions = vec![0, 3, 6];
        let m = ctx.compute_costs(&positions, None);
        assert_eq!(m.n_pos(), 3);
        assert!(m.get(0, 1).is_finite());
        assert!((m.get(0, 2) - ctx.segment_cost((0, 6))).abs() < 1e-12);
    }

    #[test]
    fn allpair_cost_is_finite_and_nonnegative() {
        let cube = cube();
        for metric in [VarianceMetric::AllPair, VarianceMetric::SAllPair] {
            let mut ctx = context(&cube, metric);
            for seg in [(0usize, 2usize), (0, 6), (2, 5)] {
                let c = ctx.segment_cost(seg);
                assert!(c.is_finite() && c >= 0.0, "{metric}: {c}");
            }
        }
    }

    #[test]
    fn timers_accumulate() {
        let cube = cube();
        let mut ctx = context(&cube, VarianceMetric::Tse);
        let _ = ctx.segment_cost((0, 6));
        assert!(ctx.ca_calls() > 0);
    }
}
