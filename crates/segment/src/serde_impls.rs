//! JSON serialization for segmentation types (vendored-serde impls).
//!
//! [`Segmentation`] deserialization funnels through [`Segmentation::new`],
//! so a scheme arriving over the wire is re-validated (cuts strictly
//! increasing, inside the interior) before it can be used.

use serde::{Deserialize, Error, Serialize, Value};

use crate::scheme::Segmentation;
use crate::segmenter::KSelection;
use crate::sketch::SketchConfig;
use crate::variance::VarianceMetric;

impl Serialize for KSelection {
    fn serialize(&self) -> Value {
        match self {
            KSelection::Auto { max_k } => Value::object([
                ("mode", Value::String("auto".into())),
                ("max_k", max_k.serialize()),
            ]),
            KSelection::Fixed(k) => Value::object([
                ("mode", Value::String("fixed".into())),
                ("k", k.serialize()),
            ]),
        }
    }
}

impl Deserialize for KSelection {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value.get("mode").and_then(Value::as_str) {
            Some("auto") => Ok(KSelection::Auto {
                max_k: value.field("max_k")?,
            }),
            Some("fixed") => Ok(KSelection::Fixed(value.field("k")?)),
            _ => Err(Error::new(
                "expected K selection mode \"auto\" or \"fixed\"",
            )),
        }
    }
}

impl Serialize for Segmentation {
    fn serialize(&self) -> Value {
        Value::object([
            ("n_points", self.n_points().serialize()),
            ("cuts", self.cuts().serialize()),
        ])
    }
}

impl Deserialize for Segmentation {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let n: usize = value.field("n_points")?;
        let cuts: Vec<usize> = value.field("cuts")?;
        Segmentation::new(n, cuts).map_err(|e| Error::new(format!("invalid segmentation: {e}")))
    }
}

impl Serialize for VarianceMetric {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for VarianceMetric {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let name = value
            .as_str()
            .ok_or_else(|| Error::new("expected a variance-metric name"))?;
        VarianceMetric::ALL
            .into_iter()
            .find(|m| m.to_string() == name)
            .ok_or_else(|| Error::new(format!("unknown variance metric {name:?}")))
    }
}

impl Serialize for SketchConfig {
    fn serialize(&self) -> Value {
        Value::object([
            ("max_len_fraction", self.max_len_fraction.serialize()),
            ("max_len_cap", self.max_len_cap.serialize()),
            ("size_factor", self.size_factor.serialize()),
        ])
    }
}

impl Deserialize for SketchConfig {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(SketchConfig {
            max_len_fraction: value.field("max_len_fraction")?,
            max_len_cap: value.field("max_len_cap")?,
            size_factor: value.field("size_factor")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segmentation_roundtrips() {
        let s = Segmentation::new(12, vec![3, 7]).unwrap();
        assert_eq!(Segmentation::deserialize(&s.serialize()), Ok(s));
    }

    #[test]
    fn segmentation_revalidates_on_the_way_in() {
        let forged = Value::object([
            ("n_points", 10usize.serialize()),
            ("cuts", vec![9usize, 3].serialize()),
        ]);
        assert!(Segmentation::deserialize(&forged).is_err());
    }

    #[test]
    fn variance_metrics_roundtrip_all() {
        for m in VarianceMetric::ALL {
            assert_eq!(VarianceMetric::deserialize(&m.serialize()), Ok(m));
        }
        assert!(VarianceMetric::deserialize(&Value::String("nope".into())).is_err());
    }

    #[test]
    fn k_selection_roundtrips() {
        for k in [KSelection::Auto { max_k: 12 }, KSelection::Fixed(4)] {
            assert_eq!(KSelection::deserialize(&k.serialize()), Ok(k));
        }
        assert!(KSelection::deserialize(&Value::String("auto".into())).is_err());
    }

    #[test]
    fn sketch_config_roundtrips() {
        let c = SketchConfig::default();
        let back = SketchConfig::deserialize(&c.serialize()).unwrap();
        assert_eq!(back.max_len_cap, c.max_len_cap);
        assert_eq!(back.max_len_fraction, c.max_len_fraction);
        assert_eq!(back.size_factor, c.size_factor);
    }
}
