use tsexplain_diff::{ScoreContext, TopExplanations};

/// A segment together with its derived top-m explanations.
///
/// This pairing is the unit the variance design works with: both the
/// *objects* (unit segments `[p_x, p_{x+1}]`, §4.1.1) and the *centroids*
/// (whole candidate segments, §4.1.2) are `ExplainedSegment`s.
#[derive(Clone, Debug)]
pub struct ExplainedSegment {
    /// Point-index endpoints `(a, b)`, `a < b`.
    pub seg: (usize, usize),
    /// The segment's top-m non-overlapping explanations.
    pub top: TopExplanations,
}

impl ExplainedSegment {
    /// Bundles a segment with its explanations.
    pub fn new(seg: (usize, usize), top: TopExplanations) -> Self {
        ExplainedSegment { seg, top }
    }
}

/// `NDCG(target, E*(source))` — how well `source`'s top-explanation list
/// explains the `target` segment (paper Eqs. 3–5).
///
/// Mapping to the web-search setting (§4.1.3): `target` is the query,
/// `source.top` the retrieved document list, `target.top` the ideal list.
/// The relevance of a retrieved explanation is its difference score on the
/// target, *rectified* to zero when its change effect differs between the
/// two segments (Table 2) — an explanation that drove an increase there but
/// a decrease here does not count as consistent.
///
/// Edge cases: a segment whose ideal DCG is zero has nothing to explain
/// (every candidate scores zero on it), so NDCG is defined as 1. The result
/// is clamped to `[0, 1]`.
pub fn ndcg(ctx: &ScoreContext<'_>, target: &ExplainedSegment, source: &ExplainedSegment) -> f64 {
    let ideal = target.top.ideal_dcg();
    if ideal <= 0.0 {
        return 1.0;
    }
    let mut dcg = 0.0;
    for (r, item) in source.top.items().iter().enumerate() {
        let (gamma, effect_on_target) = ctx.gamma_effect(item.id, target.seg);
        // Rectified relevance: γ̄ = γ(E, target) · 1[τ(E, source) = τ(E, target)].
        if effect_on_target == item.effect {
            dcg += gamma / ((r + 2) as f64).log2();
        }
    }
    (dcg / ideal).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsexplain_cube::{CubeConfig, ExplanationCube};
    use tsexplain_diff::{CascadingAnalysts, DiffMetric};
    use tsexplain_relation::{AggQuery, Datum, Field, Relation, Schema};

    /// Series (per state):
    ///   NY: 0, 10, 20, 20, 20   (rises on objects 0,1; flat after)
    ///   CA: 0,  0,  0, 15, 40   (flat; rises on objects 3,4)
    ///   TX: 5,  5,  8,  8, 11   (small rise on objects 1 and 3)
    fn cube() -> ExplanationCube {
        let schema = Schema::new(vec![
            Field::dimension("d"),
            Field::dimension("state"),
            Field::measure("v"),
        ])
        .unwrap();
        let series: &[(&str, [f64; 5])] = &[
            ("NY", [0.0, 10.0, 20.0, 20.0, 20.0]),
            ("CA", [0.0, 0.0, 0.0, 15.0, 40.0]),
            ("TX", [5.0, 5.0, 8.0, 8.0, 11.0]),
        ];
        let mut b = Relation::builder(schema);
        for (state, vals) in series {
            for (t, v) in vals.iter().enumerate() {
                b.push_row(vec![
                    Datum::from(format!("d{t}")),
                    Datum::from(*state),
                    Datum::from(*v),
                ])
                .unwrap();
            }
        }
        ExplanationCube::build(
            &b.finish(),
            &AggQuery::sum("d", "v"),
            &CubeConfig::new(["state"]),
        )
        .unwrap()
    }

    fn explained(ca: &mut CascadingAnalysts<'_>, seg: (usize, usize)) -> ExplainedSegment {
        ExplainedSegment::new(seg, ca.top_m(seg))
    }

    #[test]
    fn self_ndcg_is_one() {
        let cube = cube();
        let mut ca = CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, 3);
        let ctx = ca.score_context();
        for seg in [(0usize, 2usize), (2, 4), (0, 4)] {
            let es = explained(&mut ca, seg);
            assert!((ndcg(&ctx, &es, &es) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn disjoint_drivers_score_low() {
        let cube = cube();
        let mut ca = CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, 1);
        let ctx = ca.score_context();
        // Early segment is explained by NY, late by CA; NY does nothing in
        // the late segment so its list explains it poorly.
        let early = explained(&mut ca, (0, 2));
        let late = explained(&mut ca, (2, 4));
        assert!(ndcg(&ctx, &late, &early) < 0.1);
        assert!(ndcg(&ctx, &early, &late) < 0.1);
    }

    #[test]
    fn range_is_unit_interval() {
        let cube = cube();
        let mut ca = CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, 3);
        let ctx = ca.score_context();
        let segs = [
            (0usize, 1usize),
            (1, 2),
            (2, 3),
            (3, 4),
            (0, 2),
            (1, 3),
            (2, 4),
            (0, 4),
        ];
        let explained: Vec<ExplainedSegment> = segs
            .iter()
            .map(|&s| ExplainedSegment::new(s, ca.top_m(s)))
            .collect();
        for a in &explained {
            for b in &explained {
                let v = ndcg(&ctx, a, b);
                assert!((0.0..=1.0).contains(&v), "ndcg {v} out of range");
            }
        }
    }

    #[test]
    fn flat_target_is_perfectly_explained() {
        let schema = Schema::new(vec![
            Field::dimension("d"),
            Field::dimension("s"),
            Field::measure("v"),
        ])
        .unwrap();
        let mut b = Relation::builder(schema);
        for t in 0..3 {
            b.push_row(vec![
                Datum::from(format!("d{t}")),
                Datum::from("x"),
                Datum::from(5.0),
            ])
            .unwrap();
        }
        let cube = ExplanationCube::build(
            &b.finish(),
            &AggQuery::sum("d", "v"),
            &CubeConfig::new(["s"]),
        )
        .unwrap();
        let mut ca = CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, 3);
        let ctx = ca.score_context();
        let a = explained(&mut ca, (0, 1));
        let b2 = explained(&mut ca, (1, 2));
        assert_eq!(ndcg(&ctx, &a, &b2), 1.0);
    }

    #[test]
    fn opposite_effect_rectified_to_zero() {
        // NY rises then falls; the same explanation with flipped effect
        // contributes nothing across the two segments.
        let schema = Schema::new(vec![
            Field::dimension("d"),
            Field::dimension("s"),
            Field::measure("v"),
        ])
        .unwrap();
        let mut b = Relation::builder(schema);
        for (t, v) in [(0, 0.0), (1, 10.0), (2, 0.0)] {
            b.push_row(vec![
                Datum::from(format!("d{t}")),
                Datum::from("NY"),
                Datum::from(v),
            ])
            .unwrap();
        }
        let cube = ExplanationCube::build(
            &b.finish(),
            &AggQuery::sum("d", "v"),
            &CubeConfig::new(["s"]),
        )
        .unwrap();
        let mut ca = CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, 1);
        let ctx = ca.score_context();
        let up = explained(&mut ca, (0, 1));
        let down = explained(&mut ca, (1, 2));
        // Same explanation (s=NY), same |γ|, opposite τ → rectified to 0.
        assert_eq!(ndcg(&ctx, &up, &down), 0.0);
        assert_eq!(ndcg(&ctx, &down, &up), 0.0);
    }
}
