use std::fmt;

use tsexplain_diff::ScoreContext;

use crate::ndcg::{ndcg, ExplainedSegment};

/// The eight within-segment variance designs evaluated in §4.2.2.
///
/// Each metric combines
///
/// * a **structure** — compare every object against the segment's centroid
///   (Eq. 7) or compare all object pairs (`allpair`, Eq. 10), and
/// * a **distance form** — the symmetric two-way NDCG average (Eq. 6), the
///   object-explains-centroid direction only (`dist1`, Eq. 8), or the
///   centroid-explains-object direction only (`dist2`, Eq. 9), optionally
///   with the NDCG aggregate replaced by its quadratic (l2) mean — the
///   `S*` variants.
///
/// The paper's experiments (Fig. 6) show `tse` dominates the alternatives;
/// the engine defaults to it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VarianceMetric {
    /// Eq. 7 structure with the symmetric Eq. 6 distance — the paper's
    /// chosen design.
    Tse,
    /// Eq. 8: only how well the object's list explains the centroid.
    Dist1,
    /// Eq. 9: only how well the centroid's list explains the object.
    Dist2,
    /// Eq. 10: average symmetric distance over all object pairs.
    AllPair,
    /// `tse` with the NDCG pair aggregated by quadratic mean.
    STse,
    /// `dist1` with the NDCG term squared.
    SDist1,
    /// `dist2` with the NDCG term squared.
    SDist2,
    /// `allpair` with the quadratic-mean distance.
    SAllPair,
}

impl VarianceMetric {
    /// All eight designs, in the paper's naming order.
    pub const ALL: [VarianceMetric; 8] = [
        VarianceMetric::Tse,
        VarianceMetric::Dist1,
        VarianceMetric::Dist2,
        VarianceMetric::AllPair,
        VarianceMetric::STse,
        VarianceMetric::SDist1,
        VarianceMetric::SDist2,
        VarianceMetric::SAllPair,
    ];

    /// True for the all-pair structural variants (Eq. 10).
    pub fn is_all_pair(&self) -> bool {
        matches!(self, VarianceMetric::AllPair | VarianceMetric::SAllPair)
    }

    /// True for the squared (`S*`) variants.
    pub fn is_squared(&self) -> bool {
        matches!(
            self,
            VarianceMetric::STse
                | VarianceMetric::SDist1
                | VarianceMetric::SDist2
                | VarianceMetric::SAllPair
        )
    }
}

impl fmt::Display for VarianceMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VarianceMetric::Tse => "tse",
            VarianceMetric::Dist1 => "dist1",
            VarianceMetric::Dist2 => "dist2",
            VarianceMetric::AllPair => "allpair",
            VarianceMetric::STse => "Stse",
            VarianceMetric::SDist1 => "Sdist1",
            VarianceMetric::SDist2 => "Sdist2",
            VarianceMetric::SAllPair => "Sallpair",
        };
        write!(f, "{s}")
    }
}

/// Distance between an *object* (unit segment) and its segment *centroid*
/// under `metric` (Eqs. 6, 8, 9 and the squared variants).
///
/// For the all-pair structural variants this is still the symmetric
/// distance — the structure only changes *which* pairs are averaged, which
/// is handled by the caller.
pub fn object_centroid_distance(
    ctx: &ScoreContext<'_>,
    object: &ExplainedSegment,
    centroid: &ExplainedSegment,
    metric: VarianceMetric,
) -> f64 {
    // N_co: how well the object's list explains the centroid (Eq. 8 term);
    // N_oc: how well the centroid's list explains the object (Eq. 9 term).
    match metric {
        VarianceMetric::Tse | VarianceMetric::AllPair => {
            let n_co = ndcg(ctx, centroid, object);
            let n_oc = ndcg(ctx, object, centroid);
            1.0 - (n_co + n_oc) / 2.0
        }
        VarianceMetric::STse | VarianceMetric::SAllPair => {
            let n_co = ndcg(ctx, centroid, object);
            let n_oc = ndcg(ctx, object, centroid);
            1.0 - ((n_co * n_co + n_oc * n_oc) / 2.0).sqrt()
        }
        VarianceMetric::Dist1 => 1.0 - ndcg(ctx, centroid, object),
        VarianceMetric::SDist1 => {
            let n = ndcg(ctx, centroid, object);
            1.0 - n * n
        }
        VarianceMetric::Dist2 => 1.0 - ndcg(ctx, object, centroid),
        VarianceMetric::SDist2 => {
            let n = ndcg(ctx, object, centroid);
            1.0 - n * n
        }
    }
}

/// Distance between two objects for the all-pair structure (Eq. 10).
pub fn object_pair_distance(
    ctx: &ScoreContext<'_>,
    a: &ExplainedSegment,
    b: &ExplainedSegment,
    metric: VarianceMetric,
) -> f64 {
    let n_ab = ndcg(ctx, a, b);
    let n_ba = ndcg(ctx, b, a);
    if metric.is_squared() {
        1.0 - ((n_ab * n_ab + n_ba * n_ba) / 2.0).sqrt()
    } else {
        1.0 - (n_ab + n_ba) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsexplain_cube::{CubeConfig, ExplanationCube};
    use tsexplain_diff::{CascadingAnalysts, DiffMetric};
    use tsexplain_relation::{AggQuery, Datum, Field, Relation, Schema};

    fn cube() -> ExplanationCube {
        let schema = Schema::new(vec![
            Field::dimension("d"),
            Field::dimension("state"),
            Field::measure("v"),
        ])
        .unwrap();
        let series: &[(&str, [f64; 4])] = &[
            ("NY", [0.0, 10.0, 20.0, 20.0]),
            ("CA", [0.0, 0.0, 10.0, 40.0]),
        ];
        let mut b = Relation::builder(schema);
        for (state, vals) in series {
            for (t, v) in vals.iter().enumerate() {
                b.push_row(vec![
                    Datum::from(format!("d{t}")),
                    Datum::from(*state),
                    Datum::from(*v),
                ])
                .unwrap();
            }
        }
        ExplanationCube::build(
            &b.finish(),
            &AggQuery::sum("d", "v"),
            &CubeConfig::new(["state"]),
        )
        .unwrap()
    }

    fn all_distances(metric: VarianceMetric) -> Vec<f64> {
        let cube = cube();
        let mut ca = CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, 2);
        let ctx = ca.score_context();
        let segs = [(0usize, 1usize), (1, 2), (2, 3), (0, 3)];
        let ex: Vec<ExplainedSegment> = segs
            .iter()
            .map(|&s| ExplainedSegment::new(s, ca.top_m(s)))
            .collect();
        let mut out = Vec::new();
        for a in &ex {
            for b in &ex {
                out.push(object_centroid_distance(&ctx, a, b, metric));
            }
        }
        out
    }

    #[test]
    fn distances_in_unit_interval_for_all_metrics() {
        for metric in VarianceMetric::ALL {
            for d in all_distances(metric) {
                assert!(
                    (0.0..=1.0 + 1e-12).contains(&d),
                    "{metric}: distance {d} out of range"
                );
            }
        }
    }

    #[test]
    fn self_distance_is_zero() {
        let cube = cube();
        let mut ca = CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, 2);
        let ctx = ca.score_context();
        for metric in VarianceMetric::ALL {
            let es = ExplainedSegment::new((0, 2), ca.top_m((0, 2)));
            let d = object_centroid_distance(&ctx, &es, &es, metric);
            assert!(d.abs() < 1e-12, "{metric}: self distance {d}");
        }
    }

    #[test]
    fn symmetric_forms_are_symmetric() {
        let cube = cube();
        let mut ca = CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, 2);
        let ctx = ca.score_context();
        let a = ExplainedSegment::new((0, 1), ca.top_m((0, 1)));
        let b = ExplainedSegment::new((2, 3), ca.top_m((2, 3)));
        for metric in [VarianceMetric::Tse, VarianceMetric::STse] {
            let d_ab = object_centroid_distance(&ctx, &a, &b, metric);
            let d_ba = object_centroid_distance(&ctx, &b, &a, metric);
            assert!((d_ab - d_ba).abs() < 1e-12, "{metric} not symmetric");
        }
        let p_ab = object_pair_distance(&ctx, &a, &b, VarianceMetric::AllPair);
        let p_ba = object_pair_distance(&ctx, &b, &a, VarianceMetric::AllPair);
        assert!((p_ab - p_ba).abs() < 1e-12);
    }

    #[test]
    fn squared_variant_never_exceeds_plain_for_same_pair() {
        // Quadratic mean ≥ arithmetic mean ⇒ 1 − qm ≤ 1 − am.
        let cube = cube();
        let mut ca = CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, 2);
        let ctx = ca.score_context();
        let a = ExplainedSegment::new((0, 1), ca.top_m((0, 1)));
        let b = ExplainedSegment::new((0, 3), ca.top_m((0, 3)));
        let plain = object_centroid_distance(&ctx, &a, &b, VarianceMetric::Tse);
        let squared = object_centroid_distance(&ctx, &a, &b, VarianceMetric::STse);
        assert!(squared <= plain + 1e-12);
    }

    #[test]
    fn metric_display_names_match_paper() {
        let names: Vec<String> = VarianceMetric::ALL.iter().map(|m| m.to_string()).collect();
        assert_eq!(
            names,
            vec!["tse", "dist1", "dist2", "allpair", "Stse", "Sdist1", "Sdist2", "Sallpair"]
        );
    }
}
