//! # tsexplain-segment
//!
//! The explanation-aware K-Segmentation engine of TSExplain — module (c)
//! of the pipeline (paper §4, §5):
//!
//! * [`ndcg`] — how well one segment's top-explanation list explains
//!   another segment, via NDCG with *rectified relevance* (Eqs. 3–5): an
//!   explanation that pushes the KPI up in one segment but down in the
//!   other contributes zero.
//! * [`VarianceMetric`] — all eight within-segment variance designs the
//!   paper evaluates (§4.2.2): `tse` (Eq. 6/7), `dist1` (Eq. 8), `dist2`
//!   (Eq. 9), `allpair` (Eq. 10) and their squared `S*` variants.
//! * [`SegmentationContext`] — object top-explanation caching, segment
//!   cost computation (`|P| · var(P)`), and objective scoring.
//! * [`k_segmentation`] — the dynamic program of Eq. 11, producing optimal
//!   schemes for every `K` up to a cap in one pass (which is what makes the
//!   elbow method free, §6).
//! * [`select_sketch`] — optimization O2 (§5.3.2): a length-constrained
//!   phase-I run whose cut positions become the candidate cut set of the
//!   full pipeline.
//! * [`Segmentation`] — a validated K-segmentation scheme.
//! * [`Segmenter`] — the pluggable strategy boundary: [`DpSegmenter`] (the
//!   paper's DP, the default) and the `tsexplain-baselines` adapters all
//!   produce a [`SegmenterOutcome`] the explanation stage consumes, so the
//!   pipeline can "explain any segmentation".
//! * [`elbow_k`] — Kneedle-style elbow selection over a K-cost curve (§6),
//!   shared by every strategy's auto-K path.

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout)]
mod context;
mod cost;
mod dp;
mod elbow;
mod error;
mod ndcg;
mod scheme;
mod segmenter;
mod serde_impls;
mod sketch;
mod variance;

pub use context::{SegmentationContext, StageTimers};
pub use cost::CostMatrix;
pub use dp::{k_segmentation, k_segmentation_with, DpResult};
pub use elbow::elbow_k;
pub use error::SegmentError;
pub use ndcg::{ndcg, ExplainedSegment};
pub use scheme::Segmentation;
pub use segmenter::{
    shape_segmenter_outcome, DpSegmenter, KSelection, Segmenter, SegmenterOutcome,
};
pub use sketch::{select_sketch, SketchConfig};
pub use tsexplain_parallel::ParallelCtx;
pub use variance::{object_centroid_distance, object_pair_distance, VarianceMetric};
