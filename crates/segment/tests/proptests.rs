//! Property-based tests for the segmentation layer: DP optimality against
//! brute force, NDCG/distance ranges, scheme validity and sketch
//! invariants.

use proptest::prelude::*;
use tsexplain_cube::{CubeConfig, ExplanationCube};
use tsexplain_diff::{DiffMetric, TopExplStrategy};
use tsexplain_segment::{
    k_segmentation, ndcg, object_centroid_distance, select_sketch, CostMatrix, ExplainedSegment,
    Segmentation, SegmentationContext, SketchConfig, VarianceMetric,
};

fn cost_matrix_strategy() -> impl Strategy<Value = (usize, Vec<f64>)> {
    (4usize..9).prop_flat_map(|n| {
        let entries = n * (n - 1) / 2;
        (
            Just(n),
            proptest::collection::vec(0.0f64..10.0, entries..=entries),
        )
    })
}

fn fill(n: usize, values: &[f64]) -> CostMatrix {
    let mut m = CostMatrix::dense(n);
    let mut idx = 0;
    for i in 0..n {
        for j in i + 1..n {
            m.set(i, j, values[idx]);
            idx += 1;
        }
    }
    m
}

fn combinations(items: &[usize], k: usize) -> Vec<Vec<usize>> {
    if k == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        for mut rest in combinations(&items[i + 1..], k - 1) {
            rest.insert(0, x);
            out.push(rest);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The DP is optimal for arbitrary cost matrices and every K.
    #[test]
    fn dp_matches_brute_force((n, values) in cost_matrix_strategy()) {
        let costs = fill(n, &values);
        let dp = k_segmentation(&costs, n - 1);
        for k in 1..n {
            let interior: Vec<usize> = (1..n - 1).collect();
            let mut best = f64::INFINITY;
            for cuts in combinations(&interior, k - 1) {
                let mut bounds = vec![0];
                bounds.extend(cuts);
                bounds.push(n - 1);
                let total: f64 = bounds.windows(2).map(|w| costs.get(w[0], w[1])).sum();
                best = best.min(total);
            }
            prop_assert!((dp.total_cost(k) - best).abs() < 1e-9,
                "k={k}: dp {} vs brute {best}", dp.total_cost(k));
            // The reconstructed cuts achieve the optimal cost.
            let cuts = dp.cuts(k).unwrap();
            let mut bounds = vec![0];
            bounds.extend(&cuts);
            bounds.push(n - 1);
            let achieved: f64 = bounds.windows(2).map(|w| costs.get(w[0], w[1])).sum();
            prop_assert!((achieved - best).abs() < 1e-9);
        }
    }

    /// Segmentation schemes validate exactly the right inputs.
    #[test]
    fn scheme_validity(n in 2usize..50, cuts in proptest::collection::vec(1usize..49, 0..6)) {
        let mut sorted = cuts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.retain(|&c| c < n - 1);
        let scheme = Segmentation::new(n, sorted.clone()).unwrap();
        prop_assert_eq!(scheme.k(), sorted.len() + 1);
        let segments = scheme.segments();
        prop_assert_eq!(segments.first().unwrap().0, 0);
        prop_assert_eq!(segments.last().unwrap().1, n - 1);
        for w in segments.windows(2) {
            prop_assert_eq!(w[0].1, w[1].0); // shared boundaries
        }
        let objects: usize = (0..scheme.k()).map(|i| scheme.segment_len(i)).sum();
        prop_assert_eq!(objects, n - 1);
    }
}

/// Random small cubes for metric-level properties.
fn rows_strategy() -> impl Strategy<Value = Vec<(u8, u8, f64)>> {
    proptest::collection::vec((0u8..6, 0u8..3, 0.1f64..50.0), 8..60)
}

fn build_cube(rows: &[(u8, u8, f64)]) -> ExplanationCube {
    let schema = schema_new();
    let mut builder = tsexplain_relation::Relation::builder(schema);
    for &(t, a, v) in rows {
        builder
            .push_row(vec![
                tsexplain_relation::Datum::Attr((t as i64).into()),
                tsexplain_relation::Datum::Attr((a as i64).into()),
                tsexplain_relation::Datum::from(v),
            ])
            .unwrap();
    }
    ExplanationCube::build(
        &builder.finish(),
        &tsexplain_relation::AggQuery::sum("t", "v"),
        &CubeConfig::new(["a"]),
    )
    .unwrap()
}

fn schema_new() -> tsexplain_relation::Schema {
    tsexplain_relation::Schema::new(vec![
        tsexplain_relation::Field::dimension("t"),
        tsexplain_relation::Field::dimension("a"),
        tsexplain_relation::Field::measure("v"),
    ])
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// NDCG stays in [0,1]; self-NDCG is 1; all metric distances stay in
    /// [0,1] and are 0 on identical segments.
    #[test]
    fn ndcg_and_distance_ranges(rows in rows_strategy()) {
        let cube = build_cube(&rows);
        if cube.n_points() < 3 {
            return Ok(());
        }
        let mut ca = tsexplain_diff::CascadingAnalysts::new(&cube, DiffMetric::AbsoluteChange, 3);
        let ctx = ca.score_context();
        let n = cube.n_points();
        let segs = [(0usize, 1usize), (1, 2), (0, n - 1), (n - 2, n - 1)];
        let explained: Vec<ExplainedSegment> = segs
            .iter()
            .map(|&s| ExplainedSegment::new(s, ca.top_m(s)))
            .collect();
        for x in &explained {
            prop_assert!((ndcg(&ctx, x, x) - 1.0).abs() < 1e-9);
            for y in &explained {
                let v = ndcg(&ctx, x, y);
                prop_assert!((0.0..=1.0).contains(&v));
                for metric in VarianceMetric::ALL {
                    let d = object_centroid_distance(&ctx, x, y, metric);
                    prop_assert!((-1e-9..=1.0 + 1e-9).contains(&d), "{metric}: {d}");
                }
            }
        }
    }

    /// Segment costs are non-negative, zero on unit segments, and the
    /// whole-series cost equals the K=1 DP cost.
    #[test]
    fn cost_consistency(rows in rows_strategy()) {
        let cube = build_cube(&rows);
        let n = cube.n_points();
        if n < 3 {
            return Ok(());
        }
        let mut ctx = SegmentationContext::new(
            &cube,
            DiffMetric::AbsoluteChange,
            3,
            TopExplStrategy::Exact,
            VarianceMetric::Tse,
        );
        for x in 0..n - 1 {
            prop_assert_eq!(ctx.segment_cost((x, x + 1)), 0.0);
        }
        let whole = ctx.segment_cost((0, n - 1));
        prop_assert!(whole >= 0.0);
        let positions: Vec<usize> = (0..n).collect();
        let costs = ctx.compute_costs(&positions, None);
        let dp = k_segmentation(&costs, 3);
        prop_assert!((dp.total_cost(1) - whole).abs() < 1e-9);
        // More segments never increase the optimal DP cost by much — they
        // can only reorganize; K = n−1 is exactly 0.
        let full = k_segmentation(&costs, n - 1);
        prop_assert!(full.total_cost(n - 1).abs() < 1e-9);
    }

    /// Sketches are valid candidate-position sets.
    #[test]
    fn sketch_positions_valid(rows in rows_strategy(), frac in 0.05f64..0.5) {
        let cube = build_cube(&rows);
        let n = cube.n_points();
        if n < 4 {
            return Ok(());
        }
        let mut ctx = SegmentationContext::new(
            &cube,
            DiffMetric::AbsoluteChange,
            3,
            TopExplStrategy::Exact,
            VarianceMetric::Tse,
        );
        let config = SketchConfig {
            max_len_fraction: frac,
            max_len_cap: 20,
            size_factor: 3.0,
        };
        let sketch = select_sketch(&mut ctx, &config);
        prop_assert_eq!(*sketch.first().unwrap(), 0);
        prop_assert_eq!(*sketch.last().unwrap(), n - 1);
        prop_assert!(sketch.windows(2).all(|w| w[0] < w[1]));
    }
}
