//! Serving TSExplain over HTTP: boot `tsx-server` in-process, register a
//! dataset with a tiny client speaking the same wire types, stream new
//! rows in, and compare explanations before and after.
//!
//! Run with `cargo run --example server_quickstart`.

use tsexplain::{AggQuery, Datum, ExplainRequest, Field, Schema};
use tsexplain_server::{Client, Server, ServerConfig};

/// Three states, three phases: NY drives growth early, CA mid, TX late.
fn rows(range: std::ops::Range<i64>) -> Vec<Vec<Datum>> {
    let mut rows = Vec::new();
    for t in range {
        let ny = if t <= 10 { 8.0 * t as f64 } else { 80.0 };
        let ca = if t <= 10 {
            2.0
        } else if t <= 20 {
            2.0 + 9.0 * (t - 10) as f64
        } else {
            92.0
        };
        let tx = if t <= 20 {
            5.0
        } else {
            5.0 + 10.0 * (t - 20) as f64
        };
        for (state, v) in [("NY", ny), ("CA", ca), ("TX", tx)] {
            rows.push(vec![
                Datum::Attr(t.into()),
                Datum::from(state),
                Datum::from(v),
            ]);
        }
    }
    rows
}

fn main() {
    // Boot the serving subsystem on an ephemeral port: a worker pool over
    // a session registry with a (deliberately small) 8 MiB cube budget.
    let handle = Server::bind(ServerConfig {
        workers: 2,
        memory_budget: 8 * 1024 * 1024,
        ..ServerConfig::default()
    })
    .expect("bind an ephemeral port");
    println!("tsx-server listening on http://{}\n", handle.local_addr());

    // A client speaking the same wire types the engine serializes.
    let mut client = Client::new(handle.local_addr());
    let schema = Schema::new(vec![
        Field::dimension("t"),
        Field::dimension("state"),
        Field::measure("cases"),
    ])
    .expect("static schema");
    let created = client
        .register(&schema, &AggQuery::sum("t", "cases"), &rows(0..21))
        .expect("register the dataset");
    println!(
        "registered dataset {} ({} rows, {} points)",
        created.dataset_id, created.n_rows, created.n_points
    );

    // Ask over HTTP. The response is the engine's own ExplainResult.
    let request = ExplainRequest::new(["state"]);
    let result = client
        .explain(created.dataset_id, &request)
        .expect("explain over HTTP");
    println!("\nexplanations over [0, 20]:");
    for seg in &result.segments {
        let labels: Vec<&str> = seg.explanations.iter().map(|e| e.label.as_str()).collect();
        println!(
            "  [{:>2}, {:>2}]  {}",
            seg.start_time,
            seg.end_time,
            labels.join(", ")
        );
    }

    // Stream ten more days in and ask again: the cached cube is extended
    // incrementally, never rebuilt.
    let ack = client
        .append_rows(created.dataset_id, &rows(21..31))
        .expect("stream rows");
    let result = client
        .explain(created.dataset_id, &request)
        .expect("explain after append");
    println!("\nexplanations after streaming to t={}:", ack.n_points - 1);
    for seg in &result.segments {
        let labels: Vec<&str> = seg.explanations.iter().map(|e| e.label.as_str()).collect();
        println!(
            "  [{:>2}, {:>2}]  {}",
            seg.start_time,
            seg.end_time,
            labels.join(", ")
        );
    }

    // The /metrics document exposes both server and cache counters.
    let metrics = client.metrics().expect("metrics");
    println!(
        "\n/metrics: {}",
        serde_json::to_string_pretty(&metrics).expect("encode")
    );
}
