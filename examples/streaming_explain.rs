//! Real-time explanation (paper §8): stream a KPI in chunks and refresh
//! the evolving explanations incrementally — the settled past keeps its
//! cut points, the fresh tail is segmented at full resolution, and the
//! session extends its explanation cube in O(new rows) per chunk instead
//! of re-aggregating all history.
//!
//! Run with `cargo run --release --example streaming_explain`.

use tsexplain::{
    AggQuery, Datum, ExplainRequest, Field, Optimizations, Schema, StreamingExplainer,
};

/// A three-phase KPI: NY drives days 0..20, CA 20..40, TX 40..60.
fn rows_for(range: std::ops::Range<i64>) -> Vec<Vec<Datum>> {
    let mut rows = Vec::new();
    for t in range {
        let ny = if t <= 20 { 6.0 * t as f64 } else { 120.0 };
        let ca = if t <= 20 {
            4.0
        } else if t <= 40 {
            4.0 + 7.0 * (t - 20) as f64
        } else {
            144.0
        };
        let tx = if t <= 40 {
            9.0
        } else {
            9.0 + 8.0 * (t - 40) as f64
        };
        for (s, v) in [("NY", ny), ("CA", ca), ("TX", tx)] {
            rows.push(vec![Datum::Attr(t.into()), Datum::from(s), Datum::from(v)]);
        }
    }
    rows
}

fn main() {
    let schema = Schema::new(vec![
        Field::dimension("t"),
        Field::dimension("state"),
        Field::measure("v"),
    ])
    .expect("valid schema");
    let request = ExplainRequest::new(["state"]).with_optimizations(Optimizations::none());
    let mut streaming =
        StreamingExplainer::new(request, schema, AggQuery::sum("t", "v")).expect("valid query");

    for (chunk, range) in [(1, 0..25i64), (2, 25..45), (3, 45..60)] {
        streaming
            .append_rows(rows_for(range))
            .expect("tail-ordered rows");
        let result = streaming.refresh().expect("explainable");
        println!(
            "after chunk {chunk}: n = {}, K = {}, candidate positions = {}",
            result.stats.n_points, result.chosen_k, result.stats.candidate_positions
        );
        for seg in &result.segments {
            let top = seg
                .explanations
                .first()
                .map(|e| format!("{} ({})", e.label, e.effect))
                .unwrap_or_else(|| "-".into());
            println!("    {} ~ {}: {}", seg.start_time, seg.end_time, top);
        }
    }
    let stats = streaming.stats();
    println!("\nEach refresh reuses the previous cut points as candidates,");
    println!("so the DP only works at full resolution on the new tail.");
    println!(
        "Session cache: {} cube built, {} incremental refreshes, {} full rebuilds.",
        stats.cubes_built, stats.cube_refreshes, stats.rebuilds
    );
}
