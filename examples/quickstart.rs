//! Quickstart: build a tiny relation, register it in a session, ask "what
//! happened", then ask "why" — several times, against one prepared cube.
//!
//! Run with `cargo run --release --example quickstart`.

use tsexplain::{
    diff_two_relations, AggFn, AggQuery, Conjunction, Datum, DiffMetric, ExplainRequest,
    ExplainSession, Field, MeasureExpr, Optimizations, Predicate, Relation, Schema,
};

fn main() {
    // A KPI over 12 days, driven by different states in different phases:
    // NY explains days 0..4, CA days 4..8, TX days 8..11.
    let schema = Schema::new(vec![
        Field::dimension("date"),
        Field::dimension("state"),
        Field::measure("cases"),
    ])
    .expect("valid schema");
    let mut builder = Relation::builder(schema);
    for t in 0..12i64 {
        let ny = if t <= 4 { 25.0 * t as f64 } else { 100.0 };
        let ca = if t <= 4 {
            8.0
        } else if t <= 8 {
            8.0 + 30.0 * (t - 4) as f64
        } else {
            128.0
        };
        let tx = if t <= 8 {
            12.0
        } else {
            12.0 + 40.0 * (t - 8) as f64
        };
        for (state, v) in [("NY", ny), ("CA", ca), ("TX", tx)] {
            builder
                .push_row(vec![
                    Datum::Attr(t.into()),
                    Datum::from(state),
                    Datum::from(v),
                ])
                .expect("schema-conformant row");
        }
    }
    let relation = builder.finish();

    // "What happened": the aggregated time series.
    let query = AggQuery::sum("date", "cases");
    let ts = query.run(&relation).expect("valid query");
    println!("{query}");
    println!("aggregate: {:?}\n", ts.values);

    // "Why": register the data once, then issue explain requests.
    let mut session =
        ExplainSession::new(relation.clone(), query.clone()).expect("valid registration");
    let request = ExplainRequest::new(["state"]).with_optimizations(Optimizations::none());
    let result = session.explain(&request).expect("explainable");
    println!("{result}\n");

    // Follow-ups reuse the prepared cube — here as JSON, as a service
    // endpoint would return it.
    let follow_up = session
        .explain(&request.with_fixed_k(2))
        .expect("explainable");
    println!(
        "follow-up K = 2 reused the cube: {} (session built {} cube total)",
        follow_up.stats.cube_from_cache,
        session.stats().cubes_built
    );
    let json = serde_json::to_string(&follow_up).expect("serializable");
    println!("response bytes as JSON: {}\n", json.len());

    // The classical building block: two-relations diff between the first
    // and last day (what the paper generalizes away from).
    let day = |t: i64| Conjunction::new().and(Predicate::equals("date", t));
    let first_day = relation.select(&day(0)).expect("slice");
    let last_day = relation.select(&day(11)).expect("slice");
    let diff = diff_two_relations(
        &last_day,
        &first_day,
        &["state"],
        AggFn::Sum,
        MeasureExpr::column("cases"),
        DiffMetric::AbsoluteChange,
        3,
        1,
    )
    .expect("diffable");
    println!("two-relations diff (day 11 vs day 0):");
    for (label, gamma, effect) in diff {
        println!("  {label} ({effect}) gamma={gamma}");
    }
    println!("\nNote how the endpoint-only diff misses *when* each state mattered.");
}
