//! The paper's Liquor case study (Fig. 14, Table 5): explain Iowa liquor
//! sales through four explain-by attributes, where top explanations are
//! genuine order-2 conjunctions like `BV=1750 & P=6`, and compare the
//! optimization bundles' latencies on the paper's heaviest workload.
//!
//! The ablation runs through one [`ExplainSession`]: bundles that share
//! the cube-relevant knobs (the filter ratio) reuse a prepared cube and
//! only re-run the cheap per-query modules.
//!
//! Run with `cargo run --release --example liquor_explain`.

use tsexplain::{ExplainRequest, ExplainSession, Optimizations};
use tsexplain_datagen::liquor;

fn main() {
    let data = liquor::generate(0);
    let workload = data.workload();

    let mut session = ExplainSession::new(workload.relation.clone(), workload.query.clone())
        .expect("valid workload");
    // Full optimizations (the paper's interactive configuration).
    let request =
        ExplainRequest::new(workload.explain_by.clone()).with_optimizations(Optimizations::all());
    let result = session.explain(&request).expect("explainable");

    println!(
        "=== Liquor (n = {}, candidates = {}, after filter = {}) ===",
        result.stats.n_points, result.stats.epsilon, result.stats.filtered_epsilon
    );
    println!("chosen K = {} | {}", result.chosen_k, result.latency);

    println!("\nEvolving explanations (paper Table 5 format):");
    println!(
        "{:<26}{:<26}{:<26}{:<26}",
        "Segment", "Top-1", "Top-2", "Top-3"
    );
    for seg in &result.segments {
        let cell = |rank: usize| -> String {
            seg.explanations
                .get(rank)
                .map(|e| format!("{} {}", e.label, e.effect))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:<26}{:<26}{:<26}{:<26}",
            format!("{} ~ {}", seg.start_time, seg.end_time),
            cell(0),
            cell(1),
            cell(2)
        );
    }

    // Show that conjunctive (order >= 2) explanations actually surface.
    let conjunctions: Vec<&str> = result
        .segments
        .iter()
        .flat_map(|s| s.explanations.iter())
        .filter(|e| e.label.contains('&'))
        .map(|e| e.label.as_str())
        .collect();
    println!(
        "\norder-2+ conjunctions surfaced: {}",
        if conjunctions.is_empty() {
            "(none)".to_string()
        } else {
            conjunctions.join(", ")
        }
    );

    // Latency ablation on the same workload (Fig. 15's axis). All bundles
    // share the support-filter ratio, so the session serves every run from
    // the one cube built above.
    println!("\nOptimization ablation (end-to-end, shared cube):");
    for (name, optimizations) in [
        ("w filter", Optimizations::filter_only()),
        ("O1", Optimizations::o1()),
        ("O2", Optimizations::o2()),
        ("O1+O2", Optimizations::all()),
    ] {
        let r = session
            .explain(
                &ExplainRequest::new(workload.explain_by.clone()).with_optimizations(optimizations),
            )
            .expect("explainable");
        println!(
            "  {name:<9} {:>10.1?}  (variance {:.4}, cube from cache: {})",
            r.latency.total(),
            r.total_variance,
            r.stats.cube_from_cache
        );
    }
    let stats = session.stats();
    println!(
        "\nsession: {} requests, {} cube(s) built, {} cache hits",
        stats.requests, stats.cubes_built, stats.cube_cache_hits
    );
}
