//! Ground-truth recovery on the synthetic corpus (paper §4.2.1 / §7.3):
//! generate a noisy piecewise-linear dataset, explain it with the oracle
//! K, and measure how close TSExplain and the shape-only baselines get to
//! the true cutting points.
//!
//! Run with `cargo run --release --example synthetic_ground_truth`.

use tsexplain::{ExplainRequest, ExplainSession, Optimizations, Segmentation};
use tsexplain_baselines::{bottom_up, fluss, nnsegment};
use tsexplain_datagen::synthetic::{SyntheticConfig, SyntheticDataset};
use tsexplain_eval::distance_percent;

fn main() {
    let dataset = SyntheticDataset::generate(SyntheticConfig {
        snr_db: Some(35.0),
        seed: 3,
        ..SyntheticConfig::default()
    });
    let n = dataset.config.n_points;
    let k = dataset.ground_truth_k();
    println!(
        "synthetic dataset: n = {n}, SNR = 35 dB, ground-truth K = {k}, cuts = {:?}",
        dataset.ground_truth_cuts
    );

    // TSExplain with the oracle K (the Fig. 10 protocol).
    let workload = dataset.workload();
    let mut session = ExplainSession::new(workload.relation.clone(), workload.query.clone())
        .expect("valid workload");
    let result = session
        .explain(
            &ExplainRequest::new(workload.explain_by.clone())
                .with_optimizations(Optimizations::none())
                .with_fixed_k(k),
        )
        .expect("explainable");
    let ours = result.segmentation.clone();

    // Shape-only baselines on the aggregated series, same K.
    let aggregate = dataset.aggregate();
    let window = 10;
    let schemes: Vec<(&str, Segmentation)> = vec![
        ("TSExplain", ours),
        (
            "Bottom-Up",
            Segmentation::new(n, bottom_up(&aggregate, k)).expect("valid cuts"),
        ),
        (
            "FLUSS",
            Segmentation::new(n, fluss(&aggregate, k, window)).expect("valid cuts"),
        ),
        (
            "NNSegment",
            Segmentation::new(n, nnsegment(&aggregate, k, window)).expect("valid cuts"),
        ),
    ];

    println!("\n{:<12}{:<40}distance percent (%)", "method", "cuts");
    for (name, scheme) in &schemes {
        println!(
            "{:<12}{:<40}{:.3}",
            name,
            format!("{:?}", scheme.cuts()),
            distance_percent(scheme, &dataset.ground_truth_cuts)
        );
    }
    println!("\nLower is better; TSExplain uses the per-category explanations,");
    println!("the baselines only see the aggregate's shape.");
}
