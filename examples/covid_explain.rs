//! The paper's Covid case study (Figs. 2, 11, 12; Table 3): explain the
//! total and daily confirmed-cases series by state, using the simulated
//! JHU-style workload.
//!
//! Run with `cargo run --release --example covid_explain`.

use tsexplain::{Optimizations, TsExplain, TsExplainConfig};
use tsexplain_datagen::covid;

fn main() {
    let data = covid::generate(0);

    // --- total-confirmed-cases (Fig. 11) -------------------------------
    let total = data.total_workload();
    let engine = TsExplain::new(
        TsExplainConfig::new(total.explain_by.clone()).with_optimizations(Optimizations::all()),
    );
    let result = engine
        .explain(&total.relation, &total.query)
        .expect("explainable");
    println!("=== {} (n = {}) ===", total.name, result.stats.n_points);
    println!(
        "chosen K = {} | candidates = {} | CA calls = {} | {}",
        result.chosen_k,
        result.stats.epsilon,
        result.stats.ca_calls,
        result.latency
    );
    for seg in &result.segments {
        let tops: Vec<String> = seg
            .explanations
            .iter()
            .map(|e| format!("{} ({})", e.label, e.effect))
            .collect();
        println!("  {} ~ {}: {}", seg.start_time, seg.end_time, tops.join(", "));
    }

    // --- daily-confirmed-cases (Fig. 12 / Table 3) ----------------------
    // The daily series is fuzzy; the paper smooths fuzzy series with a
    // moving average before explaining (§7.4).
    let daily = data.daily_workload();
    let engine = TsExplain::new(
        TsExplainConfig::new(daily.explain_by.clone())
            .with_optimizations(Optimizations::all())
            .with_smoothing(7),
    );
    let result = engine
        .explain(&daily.relation, &daily.query)
        .expect("explainable");
    println!("\n=== {} (smoothed, n = {}) ===", daily.name, result.stats.n_points);
    println!("chosen K = {}", result.chosen_k);
    println!("{:<24}{:<22}{:<22}{:<22}", "Segment", "Top-1", "Top-2", "Top-3");
    for seg in &result.segments {
        let cell = |rank: usize| -> String {
            seg.explanations
                .get(rank)
                .map(|e| format!("{} {}", e.label, e.effect))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:<24}{:<22}{:<22}{:<22}",
            format!("{} ~ {}", seg.start_time, seg.end_time),
            cell(0),
            cell(1),
            cell(2)
        );
    }
}
