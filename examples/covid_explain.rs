//! The paper's Covid case study (Figs. 2, 11, 12; Table 3): explain the
//! total and daily confirmed-cases series by state, using the simulated
//! JHU-style workload.
//!
//! Shows the session workflow: each workload is registered once and then
//! queried several times (auto K, a drill-down with fixed K, a windowed
//! request) while the explanation cube is built exactly once per
//! configuration.
//!
//! Run with `cargo run --release --example covid_explain`.

use tsexplain::{ExplainRequest, ExplainSession, Optimizations};
use tsexplain_datagen::covid;

fn main() {
    let data = covid::generate(0);

    // --- total-confirmed-cases (Fig. 11) -------------------------------
    let total = data.total_workload();
    let mut session =
        ExplainSession::new(total.relation.clone(), total.query.clone()).expect("valid workload");
    let request =
        ExplainRequest::new(total.explain_by.clone()).with_optimizations(Optimizations::all());
    let result = session.explain(&request).expect("explainable");
    println!("=== {} (n = {}) ===", total.name, result.stats.n_points);
    println!(
        "chosen K = {} | candidates = {} | CA calls = {} | {}",
        result.chosen_k, result.stats.epsilon, result.stats.ca_calls, result.latency
    );
    for seg in &result.segments {
        let tops: Vec<String> = seg
            .explanations
            .iter()
            .map(|e| format!("{} ({})", e.label, e.effect))
            .collect();
        println!(
            "  {} ~ {}: {}",
            seg.start_time,
            seg.end_time,
            tops.join(", ")
        );
    }

    // Follow-up questions hit the cached cube: a coarser view…
    let coarse = session
        .explain(&request.clone().with_fixed_k(2))
        .expect("explainable");
    println!(
        "\nfollow-up K = 2 (cube from cache: {}): cuts at {:?}",
        coarse.stats.cube_from_cache,
        coarse.cut_times()
    );
    // …and a zoom into the first wave only.
    let first_wave = session
        .explain(&request.clone().with_time_range("2020-02-01", "2020-06-30"))
        .expect("explainable");
    println!(
        "first-wave window: n = {}, K = {} (cube from cache: {})",
        first_wave.stats.n_points, first_wave.chosen_k, first_wave.stats.cube_from_cache
    );
    let stats = session.stats();
    println!(
        "session: {} requests, {} cube built, {} cache hits",
        stats.requests, stats.cubes_built, stats.cube_cache_hits
    );

    // --- daily-confirmed-cases (Fig. 12 / Table 3) ----------------------
    // The daily series is fuzzy; the paper smooths fuzzy series with a
    // moving average before explaining (§7.4).
    let daily = data.daily_workload();
    let mut session =
        ExplainSession::new(daily.relation.clone(), daily.query.clone()).expect("valid workload");
    let result = session
        .explain(
            &ExplainRequest::new(daily.explain_by.clone())
                .with_optimizations(Optimizations::all())
                .with_smoothing(7),
        )
        .expect("explainable");
    println!(
        "\n=== {} (smoothed, n = {}) ===",
        daily.name, result.stats.n_points
    );
    println!("chosen K = {}", result.chosen_k);
    println!(
        "{:<24}{:<22}{:<22}{:<22}",
        "Segment", "Top-1", "Top-2", "Top-3"
    );
    for seg in &result.segments {
        let cell = |rank: usize| -> String {
            seg.explanations
                .get(rank)
                .map(|e| format!("{} {}", e.label, e.effect))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:<24}{:<22}{:<22}{:<22}",
            format!("{} ~ {}", seg.start_time, seg.end_time),
            cell(0),
            cell(1),
            cell(2)
        );
    }
}
