//! The paper's S&P 500 case study (Fig. 13, Table 4): explain the index's
//! crash and rebound through the hierarchical explain-by attributes
//! category ⊃ subcategory ⊃ stock, served from one session.
//!
//! Run with `cargo run --release --example sp500_explain`.

use tsexplain::{DiffMetric, ExplainRequest, ExplainSession, Optimizations};
use tsexplain_datagen::sp500;

fn main() {
    let data = sp500::generate(0);
    let workload = data.workload();

    let mut session = ExplainSession::new(workload.relation.clone(), workload.query.clone())
        .expect("valid workload");
    let request =
        ExplainRequest::new(workload.explain_by.clone()).with_optimizations(Optimizations::all());
    let result = session.explain(&request).expect("explainable");

    println!(
        "=== S&P 500 (n = {}, candidates = {}, after filter = {}) ===",
        result.stats.n_points, result.stats.epsilon, result.stats.filtered_epsilon
    );
    println!("latency: {}", result.latency);

    println!("\nK-Variance curve (elbow picked K = {}):", result.chosen_k);
    for (k, v) in &result.k_variance_curve {
        let marker = if *k == result.chosen_k {
            "  <- elbow"
        } else {
            ""
        };
        println!("  K = {k:>2}: {v:>10.4}{marker}");
    }

    println!("\nEvolving explanations (paper Table 4 format):");
    println!(
        "{:<26}{:<30}{:<30}{:<30}",
        "Segment", "Top-1", "Top-2", "Top-3"
    );
    for seg in &result.segments {
        let cell = |rank: usize| -> String {
            seg.explanations
                .get(rank)
                .map(|e| format!("{} {}", e.label, e.effect))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:<26}{:<30}{:<30}{:<30}",
            format!("{} ~ {}", seg.start_time, seg.end_time),
            cell(0),
            cell(1),
            cell(2)
        );
    }

    // The index trendline per segment for the leading explanation,
    // mirroring the paper's trendline visualization (Fig. 2-style).
    println!("\nLeading contributor's trajectory per segment:");
    for seg in &result.segments {
        if let Some(top) = seg.explanations.first() {
            let first = top.series.first().copied().unwrap_or(0.0);
            let last = top.series.last().copied().unwrap_or(0.0);
            println!(
                "  {} ~ {}: {} moved {:.1} -> {:.1}",
                seg.start_time, seg.end_time, top.label, first, last
            );
        }
    }

    // Analyst follow-ups against the cached cube: which sectors shifted
    // *relative to their own weight*?
    let relative = session
        .explain(
            &request
                .with_diff_metric(DiffMetric::RelativeChange)
                .with_top_m(1),
        )
        .expect("explainable");
    println!(
        "\nrelative-change view (cube from cache: {}):",
        relative.stats.cube_from_cache
    );
    for seg in &relative.segments {
        if let Some(top) = seg.explanations.first() {
            println!("  {} ~ {}: {}", seg.start_time, seg.end_time, top.label);
        }
    }
    let stats = session.stats();
    println!(
        "\nsession: {} requests answered by {} cube ({} cache hits)",
        stats.requests, stats.cubes_built, stats.cube_cache_hits
    );
}
